package window

import (
	"fmt"
	"sync"
	"time"

	"pkgstream/internal/engine"
)

// Plan binds an Aggregator to a Spec and implements engine.WindowedOp:
// it manufactures the PartialBolt/FinalBolt instance pair that
// engine.Builder.WindowedAggregate expands into the PKG-partial →
// KG-final two-stage plan. A Plan belongs to one topology run — its
// stats accumulate over the instances it created, so build a fresh Plan
// (and topology) per run.
type Plan struct {
	agg  Aggregator
	comb Combiner // non-nil: the int64 fast path is active
	spec Spec

	mu    sync.Mutex
	parts []*instrumentation
	fins  []*instrumentation
}

var _ engine.WindowedOp = (*Plan)(nil)

// NewPlan validates the spec and returns a Plan for the aggregator. If
// agg also implements Combiner, both stages use the int64 fast path.
func NewPlan(agg Aggregator, spec Spec) (*Plan, error) {
	if agg == nil {
		return nil, fmt.Errorf("window: nil aggregator")
	}
	ns, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	p := &Plan{agg: agg, spec: ns}
	if c, ok := agg.(Combiner); ok {
		p.comb = c
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error, for fluent topology
// construction with specs known to be valid.
func MustPlan(agg Aggregator, spec Spec) *Plan {
	p, err := NewPlan(agg, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec returns the normalized spec the plan runs with.
func (p *Plan) Spec() Spec { return p.spec }

// NewPartial implements engine.WindowedOp.
func (p *Plan) NewPartial() engine.Bolt {
	in := &instrumentation{}
	p.mu.Lock()
	p.parts = append(p.parts, in)
	p.mu.Unlock()
	return &PartialBolt{plan: p, inst: in}
}

// NewFinal implements engine.WindowedOp.
func (p *Plan) NewFinal() engine.Bolt {
	in := &instrumentation{}
	p.mu.Lock()
	p.fins = append(p.fins, in)
	p.mu.Unlock()
	return &FinalBolt{plan: p, inst: in}
}

// FinalParallelism implements engine.WindowedOp.
func (p *Plan) FinalParallelism() int { return p.spec.FinalParallelism }

// TickEvery implements engine.WindowedOp: the wall-clock aggregation
// period T drives the partial stage's flush ticks.
func (p *Plan) TickEvery() time.Duration { return p.spec.Period }

// FinalGrouping implements engine.WindowedOp. Flushed partials are key
// grouped — both PKG partials of a key must meet at one final instance —
// while watermark marks broadcast to every final instance. Per-instance
// aggregations converge on a single final instance instead.
func (p *Plan) FinalGrouping() engine.GroupingFactory {
	if p.spec.PerInstance {
		return engine.Global()
	}
	kg := engine.Key()
	return func(n int, seed uint64, emitter int) engine.Grouping {
		return markBroadcast{data: kg(n, seed, emitter)}
	}
}

// markBroadcast broadcasts watermark marks (the only Tick-flagged tuples
// on a partial→final edge) and key-groups everything else.
type markBroadcast struct {
	data engine.Grouping
}

// Select implements engine.Grouping.
func (g markBroadcast) Select(t engine.Tuple) int {
	if t.Tick {
		return engine.BroadcastAll
	}
	return g.data.Select(t)
}

// HotkeyStats implements engine.HotkeyStatsSource by delegation, so a
// SourceAware-wrapped frequency-aware grouping still reports its
// classifier counters through Stats.Hotkeys.
func (g markBroadcast) HotkeyStats() (engine.HotkeyStats, bool) {
	if hs, ok := g.data.(engine.HotkeyStatsSource); ok {
		return hs.HotkeyStats()
	}
	return engine.HotkeyStats{}, false
}

// PartialStats folds the counters of every partial instance created so
// far (MaxLive is the maximum across instances — the worst
// single-instance memory footprint).
func (p *Plan) PartialStats() engine.WindowStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fold(p.parts)
}

// FinalStats folds the counters of every final instance created so far.
func (p *Plan) FinalStats() engine.WindowStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fold(p.fins)
}

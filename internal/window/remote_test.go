package window

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// wordSpout emits a deterministic skewed word stream with a pre-stamped
// logical clock (one word per millisecond, starting at 1ms — 0 means
// "unset"). With marks > 0 it advertises its progress with a SourceMark
// every `marks` words and a final mark when done, and skews its clock
// by skew to stress multi-source watermarking.
type wordSpout struct {
	n     int
	marks int
	skew  time.Duration

	i   int
	id  int
	par int
}

func (s *wordSpout) Open(ctx *engine.Context) { s.id = ctx.Index; s.par = ctx.Parallelism }
func (s *wordSpout) Close()                   {}

func (s *wordSpout) at(i int) int64 {
	return int64(time.Duration(i+1)*time.Millisecond + time.Duration(s.id)*s.skew)
}

func (s *wordSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	word := fmt.Sprintf("w%d", (s.i*s.i+s.id*7919)%50)
	if s.i%13 == 0 {
		word = "hot" // a recurring hot word crossing partials
	}
	out.Emit(engine.Tuple{Key: word, EmitNanos: s.at(s.i - 1)})
	if s.marks > 0 {
		if s.i%s.marks == 0 {
			out.Emit(SourceMark(s.id, s.at(s.i-1)))
		}
		if s.i == s.n {
			out.Emit(SourceMark(s.id, int64(1)<<62))
		}
	}
	return s.i < s.n
}

// expectedCounts replays the spouts' streams and computes the exact per
// (word, window) totals for a tumbling window of the given size.
func expectedCounts(nSpouts, perSpout int, size, skew time.Duration) map[string]int64 {
	want := map[string]int64{}
	for id := 0; id < nSpouts; id++ {
		s := &wordSpout{n: perSpout, id: id, skew: skew}
		for i := 0; i < perSpout; i++ {
			word := fmt.Sprintf("w%d", ((i+1)*(i+1)+id*7919)%50)
			if (i+1)%13 == 0 {
				word = "hot"
			}
			ts := s.at(i)
			start := ts / int64(size) * int64(size)
			want[fmt.Sprintf("%s@%d", word, start)]++
		}
	}
	return want
}

// resultSink collects final-stage results.
type resultSink struct {
	mu   *sync.Mutex
	got  map[string]int64
	late *int64
}

func (b *resultSink) Prepare(*engine.Context) {}
func (b *resultSink) Cleanup(engine.Emitter)  {}
func (b *resultSink) Execute(t engine.Tuple, _ engine.Emitter) {
	if t.Tick {
		return
	}
	res := t.Values[0].(Result)
	b.mu.Lock()
	b.got[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value.(int64)
	b.mu.Unlock()
}

const (
	rtSpouts   = 2
	rtPerSpout = 20_000
	rtPartials = 4
	rtSize     = 250 * time.Millisecond
)

func remoteSpec() Spec {
	return Spec{Size: rtSize, EveryTuples: 1500, Sources: rtSpouts}
}

// runInProcess runs the windowed wordcount entirely in one engine and
// returns the per-(word, window) counts.
func runInProcess(t *testing.T) map[string]int64 {
	t.Helper()
	var mu sync.Mutex
	got := map[string]int64{}
	plan := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-local", 42)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: rtPerSpout, marks: 500}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials).Input("words", SourceAware(engine.Partial()))
	b.AddBolt("sink", func() engine.Bolt {
		return &resultSink{mu: &mu, got: got}
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.NewRuntime(top, engine.Options{}).Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// runRemote runs the same topology with the final stage hosted on
// `nodes` TCP workers and returns the union of their closed windows.
func runRemote(t *testing.T, nodes int) map[string]int64 {
	t.Helper()
	handlers := make([]*FinalHandler, nodes)
	addrs := make([]string, nodes)
	for i := range handlers {
		plan := MustPlan(Count{}, remoteSpec())
		h, err := plan.NewFinalHandler(rtPartials)
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		handlers[i] = h
		addrs[i] = w.Addr()
	}

	plan := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-remote", 42)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: rtPerSpout, marks: 500}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials, engine.RemoteFinal(addrs...)).
		Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.NewRuntime(top, engine.Options{}).Run(); err != nil {
		t.Fatal(err)
	}

	got := map[string]int64{}
	for i, h := range handlers {
		if err := h.WaitDone(10 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if h.BadFrames() != 0 || h.Unencodable() != 0 {
			t.Fatalf("node %d: %d bad frames, %d unencodable results",
				i, h.BadFrames(), h.Unencodable())
		}
		for _, res := range h.Results() {
			got[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value
		}
	}
	return got
}

func diffCounts(t *testing.T, label string, got, want map[string]int64) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	bad := 0
	for _, k := range keys {
		if got[k] != want[k] {
			if bad < 10 {
				t.Errorf("%s: %s = %d, want %d", label, k, got[k], want[k])
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d of %d (word, window) pairs differ", label, bad, len(keys))
	}
}

// TestRemoteFinalMatchesInProcess is the tentpole's end-to-end gate:
// the same windowed wordcount produces IDENTICAL per-(word, window)
// counts whether the final stage merges in-process or behind TCP on two
// remote nodes — and both match the independently replayed truth.
func TestRemoteFinalMatchesInProcess(t *testing.T) {
	want := expectedCounts(rtSpouts, rtPerSpout, rtSize, 0)
	local := runInProcess(t)
	diffCounts(t, "in-process", local, want)
	remote := runRemote(t, 2)
	diffCounts(t, "remote vs truth", remote, want)
	diffCounts(t, "remote vs in-process", remote, local)
}

// TestSourceAwareWatermarksCloseExactlyWithSkewedClocks: two sources
// whose logical clocks are skewed by far more than any lateness
// allowance, no Spec.Lateness at all — with SourceMark progress and
// Spec.Sources the final stage advances on the minimum across sources,
// so nothing is ever late.
func TestSourceAwareWatermarksCloseExactlyWithSkewedClocks(t *testing.T) {
	const skew = 3 * time.Second // 12 windows of clock skew between sources
	var mu sync.Mutex
	got := map[string]int64{}
	plan := MustPlan(Count{}, Spec{Size: rtSize, EveryTuples: 700, Sources: rtSpouts})
	b := engine.NewBuilder("skewed", 7)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: rtPerSpout, marks: 400, skew: skew}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials).Input("words", SourceAware(engine.Partial()))
	b.AddBolt("sink", func() engine.Bolt {
		return &resultSink{mu: &mu, got: got}
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.NewRuntime(top, engine.Options{}).Run(); err != nil {
		t.Fatal(err)
	}
	if ld := plan.FinalStats().LateDropped; ld != 0 {
		t.Fatalf("%d partials dropped late despite source-aware watermarks", ld)
	}
	diffCounts(t, "skewed", got, expectedCounts(rtSpouts, rtPerSpout, rtSize, skew))
}

// TestFinalHandlerAnswersPointQueries drives the query surface of a
// hosted final: OpCount over closed windows and OpResults' Done flag.
func TestFinalHandlerAnswersPointQueries(t *testing.T) {
	plan := MustPlan(Count{}, Spec{}) // global window, closed at final mark
	h, err := plan.NewFinalHandler(1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := transport.ListenHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	src, err := transport.DialSource([]string{w.Addr()}, transport.ModeKG, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	key := engine.Tuple{Key: "hot"}
	for i := 0; i < 3; i++ {
		if err := src.SendPartial(&wire.Partial{KeyHash: key.RouteKey(), Key: "hot", Count: 10}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := src.QueryWorker(0, wire.Query{Op: wire.OpResults})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done || len(rep.Results) != 0 {
		t.Fatalf("results before final mark: %+v", rep)
	}
	if err := src.SendMark(int64(1) << 62); err != nil {
		t.Fatal(err)
	}
	if err := src.SendMark(9223372036854775807); err != nil { // final
		t.Fatal(err)
	}
	if err := h.WaitDone(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err = src.QueryWorker(0, wire.Query{Op: wire.OpCount, Key: key.RouteKey()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Done || rep.Count != 30 {
		t.Fatalf("OpCount reply %+v, want done with 30", rep)
	}
}

package window

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// buildPartialNodes spins up `nodes` hosted partial stages forwarding
// to the given final addresses, returning their handlers and addresses.
func buildPartialNodes(t *testing.T, nodes int, faddrs []string) ([]*PartialHandler, []string) {
	t.Helper()
	handlers := make([]*PartialHandler, nodes)
	addrs := make([]string, nodes)
	for i := range handlers {
		plan := MustPlan(Count{}, remoteSpec())
		h, err := plan.NewPartialHandler(PartialHandlerOptions{
			ID: i, Nodes: nodes, FinalAddrs: faddrs, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		handlers[i] = h
		addrs[i] = w.Addr()
	}
	return handlers, addrs
}

// runRemotePartial runs the full three-stage shape with BOTH windowed
// stages out of process: engine spouts → wire tuples → hosted partials
// → wire partials → hosted finals, all across TCP loopback.
func runRemotePartial(t *testing.T, partialNodes, finalNodes int) map[string]int64 {
	t.Helper()
	finals := make([]*FinalHandler, finalNodes)
	faddrs := make([]string, finalNodes)
	for i := range finals {
		plan := MustPlan(Count{}, remoteSpec())
		h, err := plan.NewFinalHandler(partialNodes)
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		finals[i] = h
		faddrs[i] = w.Addr()
	}
	partials, paddrs := buildPartialNodes(t, partialNodes, faddrs)

	plan := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-remote-partial", 42)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: rtPerSpout, marks: 500}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials, engine.RemotePartial(paddrs...)).
		Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats().EdgeTotals("wc.partial"); st.Failures != 0 {
		t.Fatalf("tuple edge failures: %+v", st)
	}

	var absorbed int64
	for i, h := range partials {
		if err := h.WaitDone(10 * time.Second); err != nil {
			t.Fatalf("partial node %d: %v", i, err)
		}
		if h.BadFrames() != 0 {
			t.Fatalf("partial node %d: %d bad frames", i, h.BadFrames())
		}
		absorbed += h.Processed()
	}
	if want := int64(rtSpouts * rtPerSpout); absorbed != want {
		t.Fatalf("partial nodes absorbed %d tuples, want %d — the flow-controlled edge dropped or duplicated", absorbed, want)
	}

	got := map[string]int64{}
	for i, h := range finals {
		if err := h.WaitDone(10 * time.Second); err != nil {
			t.Fatalf("final node %d: %v", i, err)
		}
		if h.BadFrames() != 0 {
			t.Fatalf("final node %d: %d bad frames", i, h.BadFrames())
		}
		for _, res := range h.Results() {
			got[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value
		}
	}
	return got
}

// TestRemotePartialMatchesInProcess is the PR 5 tentpole gate: the full
// spout → wire → remote partial → remote final pipeline produces
// IDENTICAL per-(word, window) counts to the in-process engine — and
// both match the independently replayed truth.
func TestRemotePartialMatchesInProcess(t *testing.T) {
	want := expectedCounts(rtSpouts, rtPerSpout, rtSize, 0)
	local := runInProcess(t)
	diffCounts(t, "in-process", local, want)
	remote := runRemotePartial(t, 2, 2)
	diffCounts(t, "remote-partial vs truth", remote, want)
	diffCounts(t, "remote-partial vs in-process", remote, local)
}

// gatedTuples wraps a handler, blocking every tuple on the gate — the
// deliberately slowed partial worker of the backpressure gate.
type gatedTuples struct {
	transport.Handler
	gate chan struct{}
}

func (g *gatedTuples) HandleTuple(t *wire.Tuple) {
	<-g.gate
	g.Handler.HandleTuple(t)
}

// TestRemotePartialBackpressure is the acceptance regression test: a
// deliberately stalled partial worker must stall the SPOUT through the
// credit window and the engine's bounded queues — bounded in-flight
// tuples, no unbounded buffering, no drops — and the stream must finish
// exactly once the worker resumes.
func TestRemotePartialBackpressure(t *testing.T) {
	const total = 30_000
	const window, queue = 16, 128
	fplan := MustPlan(Count{}, remoteSpec())
	fh, err := fplan.NewFinalHandler(1)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := transport.ListenHandler("127.0.0.1:0", fh)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()

	pplan := MustPlan(Count{}, Spec{Size: rtSize, EveryTuples: 1500, Sources: 1})
	ph, err := pplan.NewPartialHandler(PartialHandlerOptions{
		ID: 0, Nodes: 1, FinalAddrs: []string{fw.Addr()}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	pw, err := transport.ListenHandler("127.0.0.1:0", &gatedTuples{Handler: ph, gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	plan := MustPlan(Count{}, Spec{Size: rtSize, EveryTuples: 1500, Sources: 1})
	b := engine.NewBuilder("bp", 7)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: total, marks: 500}
	}, 1)
	b.WindowedAggregate("wc", plan, 1, engine.RemotePartialOpts(engine.RemotePartialConfig{
		Addrs: []string{pw.Addr()}, Window: window,
	})).Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: queue, BatchSize: 16})
	runDone := make(chan error, 1)
	go func() { runDone <- rt.Run() }()

	// With the worker gated, the whole pipeline must clog: credit
	// window (16 frames on the wire edge), the forwarder's bounded
	// queue (128 tuples), and the emit-side batch buffers. The spout's
	// emitted count has to plateau far below the stream length.
	var plateau int64
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := rt.Stats().TotalExecuted("wc.partial") // tuples the forwarder pulled
		emitted := rt.Stats().PerInstance["words"][0].Emitted
		if emitted == plateau && emitted > 0 && cur > 0 {
			break // two consecutive identical samples: stalled
		}
		plateau = emitted
		if time.Now().After(deadline) {
			t.Fatalf("spout never stalled (emitted %d)", emitted)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Generous bound: window + queue + batching slack on both edges is
	// a few hundred tuples; a leak (unbounded TCP buffering) would sit
	// in the tens of thousands.
	if plateau > 2_000 {
		t.Fatalf("spout emitted %d tuples against a stalled worker — backpressure is not reaching it", plateau)
	}
	if st := rt.Stats().EdgeTotals("wc.partial"); st.Stalls == 0 {
		t.Fatalf("no credit stalls recorded on the tuple edge: %+v", st)
	}
	select {
	case err := <-runDone:
		t.Fatalf("topology finished against a stalled worker: %v", err)
	default:
	}

	// Resume: everything must drain, exactly once.
	close(gate)
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if err := ph.WaitDone(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := ph.Processed(); got != total {
		t.Fatalf("partial node absorbed %d/%d tuples after resume", got, total)
	}
	if err := fh.WaitDone(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, res := range fh.Results() {
		sum += res.Value
	}
	if sum != total {
		t.Fatalf("final node counted %d/%d tuples", sum, total)
	}
}

// pausingSpout is a wordSpout that parks halfway until resume closes —
// so a test can restart a node strictly BETWEEN the two halves of the
// stream, deterministically.
type pausingSpout struct {
	wordSpout
	pauseAt int
	resume  chan struct{}
}

func (s *pausingSpout) Next(out engine.Emitter) bool {
	if s.i == s.pauseAt {
		<-s.resume
	}
	return s.wordSpout.Next(out)
}

// TestRemoteFinalSurvivesNodeRestart: the forwarder's bounded-backoff
// retry rides out a final node restarting mid-stream — the topology
// completes instead of panicking on the first broken pipe, and the
// retries surface in Stats.Edges.
func TestRemoteFinalSurvivesNodeRestart(t *testing.T) {
	plan0 := MustPlan(Count{}, remoteSpec())
	h0, err := plan0.NewFinalHandler(rtPartials)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := transport.ListenHandler("127.0.0.1:0", h0)
	if err != nil {
		t.Fatal(err)
	}
	addr := w0.Addr()

	resume := make(chan struct{})
	plan := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-restart", 42)
	b.AddSpout("words", func() engine.Spout {
		return &pausingSpout{
			wordSpout: wordSpout{n: rtPerSpout, marks: 500},
			pauseAt:   rtPerSpout / 2, resume: resume,
		}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials, engine.RemoteFinal(addr)).
		Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{})
	runDone := make(chan error, 1)
	go func() { runDone <- rt.Run() }()

	// First half flows to the original node; with the spouts parked,
	// kill it and stand a fresh one up on the same address, then
	// release the second half — every send from here on rides the
	// retry path at least once.
	deadline := time.Now().Add(10 * time.Second)
	for h0.Stats().Merged == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no partials reached the node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = w0.Close()
	plan1 := MustPlan(Count{}, remoteSpec())
	h1, err := plan1.NewFinalHandler(rtPartials)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := transport.ListenHandler(addr, h1)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer w1.Close()
	close(resume)

	if err := <-runDone; err != nil {
		t.Fatalf("topology failed across a node restart: %v", err)
	}
	if st := rt.Stats().EdgeTotals("wc"); st.Retries == 0 || st.Failures != 0 {
		t.Fatalf("edge stats across restart: %+v (want retries > 0, no failures)", st)
	}
	// The replacement node must still reach Done: every partial
	// instance's final mark was (re)delivered after the restart.
	if err := h1.WaitDone(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteFinalFailsCleanlyWhenNodeDies: with the node gone for good,
// retries exhaust and the topology fails CLEANLY — Run returns (no
// hang, no crash) with the typed *engine.EdgeError naming the edge.
func TestRemoteFinalFailsCleanlyWhenNodeDies(t *testing.T) {
	plan0 := MustPlan(Count{}, remoteSpec())
	h0, err := plan0.NewFinalHandler(rtPartials)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := transport.ListenHandler("127.0.0.1:0", h0)
	if err != nil {
		t.Fatal(err)
	}
	addr := w0.Addr()

	resume := make(chan struct{})
	plan := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-dead", 42)
	b.AddSpout("words", func() engine.Spout {
		return &pausingSpout{
			wordSpout: wordSpout{n: rtPerSpout, marks: 500},
			pauseAt:   rtPerSpout / 2, resume: resume,
		}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan, rtPartials, engine.RemoteFinal(addr)).
		Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{})
	runDone := make(chan error, 1)
	go func() { runDone <- rt.Run() }()

	deadline := time.Now().Add(10 * time.Second)
	for h0.Stats().Merged == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no partials reached the node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = w0.Close() // and nothing comes back
	close(resume)

	select {
	case err := <-runDone:
		var ee *engine.EdgeError
		if !errors.As(err, &ee) {
			t.Fatalf("run error %v (%T) is not an *engine.EdgeError", err, err)
		}
		if ee.Addr != addr || ee.Attempts != 4 {
			t.Fatalf("edge error %+v, want addr %s after 4 attempts", ee, addr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("topology hung on a dead node")
	}
	if st := rt.Stats().EdgeTotals("wc"); st.Failures == 0 {
		t.Fatalf("no failure recorded: %+v", st)
	}
}

// TestSubscribePushMatchesDrain: a push subscription delivers exactly
// the results the paged drain does — subscribed BEFORE the stream
// finishes (live pushes as windows close) and after (pure backlog).
func TestSubscribePushMatchesDrain(t *testing.T) {
	plan := MustPlan(Count{}, remoteSpec())
	h, err := plan.NewFinalHandler(rtPartials)
	if err != nil {
		t.Fatal(err)
	}
	w, err := transport.ListenHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Subscribe before any data exists: this session sees live pushes.
	type subResult struct {
		res []wire.WindowResult
		err error
	}
	live := make(chan subResult, 1)
	go func() {
		res, err := transport.SubscribeResults(w.Addr(), 30*time.Second)
		live <- subResult{res, err}
	}()

	plan2 := MustPlan(Count{}, remoteSpec())
	b := engine.NewBuilder("rt-push", 42)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: rtPerSpout, marks: 500}
	}, rtSpouts)
	b.WindowedAggregate("wc", plan2, rtPartials, engine.RemoteFinal(w.Addr())).
		Input("words", SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.NewRuntime(top, engine.Options{}).Run(); err != nil {
		t.Fatal(err)
	}

	drained, err := transport.DrainResults(w.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lr := <-live
	if lr.err != nil {
		t.Fatal(lr.err)
	}
	// A late subscription sees the same thing as pure backlog.
	after, err := transport.SubscribeResults(w.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(rs []wire.WindowResult) map[string]int64 {
		m := map[string]int64{}
		for _, r := range rs {
			m[fmt.Sprintf("%s@%d", r.Key, r.Start)] += r.Value
		}
		return m
	}
	want := sum(drained)
	diffCounts(t, "live subscription", sum(lr.res), want)
	diffCounts(t, "late subscription", sum(after), want)
	if len(lr.res) != len(drained) || len(after) != len(drained) {
		t.Fatalf("result counts: live %d, late %d, drained %d", len(lr.res), len(after), len(drained))
	}
}

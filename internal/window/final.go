package window

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/trace"
)

// FinalBolt is the second stage of a windowed aggregation: it merges the
// flushed partials of each (key, window) pair — under PKG at most two
// per flush round, the bounded aggregation cost the paper argues for —
// and emits one Result per pair once the combined watermark (the minimum
// across all partial instances) passes the window's end. Partials
// arriving for an already-closed window are dropped and counted as late.
type FinalBolt struct {
	plan *Plan
	inst *instrumentation

	ctx    engine.Context
	states map[slot]State // general path
	counts map[slot]int64 // Combiner fast path
	// strCounts/intCounts are the global-window Combiner fast path,
	// mirroring PartialBolt: one window per key means the merge is a
	// plain counter map keyed by the tuple key, with no slot-struct
	// hashing per merged partial.
	strCounts map[string]int64
	intCounts map[uint64]int64
	wms       map[int]int64 // watermark per partial instance
	closed    int64         // windows ending ≤ closed have been emitted
	// minEnd is the earliest end among live slots (MaxInt64 when none),
	// so the frequent watermark advances that close nothing skip the
	// full slot scan.
	minEnd   int64
	noted    int64 // last combined watermark fed to the lag gauge
	lastLive int   // last value published to the stats gauge
	// traced maps the (key, window) slots a traced partial merged into
	// to its trace ID, so the window close that emits the slot's Result
	// can finish the trace. Lazily allocated.
	traced map[slot]uint64
}

// Prepare implements engine.Bolt.
func (b *FinalBolt) Prepare(ctx *engine.Context) {
	b.ctx = *ctx
	sp := &b.plan.spec
	switch {
	case b.plan.comb != nil && sp.Size <= 0 && !sp.PerInstance:
		b.strCounts = map[string]int64{}
		b.intCounts = map[uint64]int64{}
	case b.plan.comb != nil:
		b.counts = map[slot]int64{}
	default:
		b.states = map[slot]State{}
	}
	b.wms = map[int]int64{}
	b.closed = math.MinInt64
	b.minEnd = math.MaxInt64
	b.noted = math.MinInt64
}

// Execute implements engine.Bolt: marks advance the watermark, partials
// merge.
func (b *FinalBolt) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		if len(t.Values) == 1 {
			if m, ok := t.Values[0].(mark); ok {
				b.advance(m, out)
			}
		}
		return // engine timer ticks carry no values and are ignored
	}
	ps, ok := t.Values[0].(partialState)
	if !ok {
		panic(fmt.Sprintf("window: final stage received a non-partial tuple (values %v); "+
			"subscribe downstream bolts to the final stage, not the reverse", t.Values))
	}
	sp := &b.plan.spec
	if b.strCounts != nil {
		// Global-window Combiner fast path: the single window can only
		// close at stream end, so there is no late check and no minEnd
		// bookkeeping — just the counter merge.
		b.inst.merged.Add(1)
		if t.Key != "" {
			b.strCounts[t.Key] += ps.state.(int64)
			if t.TraceID != 0 {
				b.tagTrace(slot{key: t.Key}, t.TraceID)
			}
		} else {
			b.intCounts[t.RouteKey()] += ps.state.(int64)
			if t.TraceID != 0 {
				b.tagTrace(slot{hash: t.RouteKey()}, t.TraceID)
			}
		}
		if t.TraceID != 0 {
			trace.Add(t.TraceID, trace.HopMerge, trace.Now(), 0, 0, 0, b.ctx.Component)
		}
		b.minEnd = math.MaxInt64
		b.publishLive()
		return
	}
	end := sp.end(ps.start)
	if end <= b.closed {
		b.inst.late.Add(1)
		return
	}
	if end < b.minEnd {
		b.minEnd = end
	}
	var sl slot
	if sp.PerInstance {
		sl = slot{start: ps.start}
	} else {
		sl = slot{hash: t.RouteKey(), key: t.Key, start: ps.start}
	}
	b.inst.merged.Add(1)
	if b.counts != nil {
		b.counts[sl] += ps.state.(int64)
	} else if cur, ok := b.states[sl]; ok {
		b.states[sl] = b.plan.agg.Merge(cur, ps.state)
	} else {
		// First partial for the pair: adopt it (the emitting instance
		// dropped its reference at flush, so no aliasing).
		b.states[sl] = ps.state
	}
	if t.TraceID != 0 {
		b.tagTrace(sl, t.TraceID)
		trace.Add(t.TraceID, trace.HopMerge, trace.Now(), 0, sl.start, 0, b.ctx.Component)
	}
	b.publishLive()
}

// tagTrace remembers that a traced partial merged into sl, so the
// close that emits sl's Result can finish the trace. A second traced
// partial for the same slot overwrites the first — one trace per
// Result is enough for assembly.
func (b *FinalBolt) tagTrace(sl slot, id uint64) {
	if b.traced == nil {
		b.traced = map[slot]uint64{}
	}
	b.traced[sl] = id
}

// takeTrace removes and returns the trace ID tagged on sl (0: none).
func (b *FinalBolt) takeTrace(sl slot) uint64 {
	if b.traced == nil {
		return 0
	}
	id, ok := b.traced[sl]
	if ok {
		delete(b.traced, sl)
	}
	return id
}

// publishLive updates the live-slot gauge when it changed.
func (b *FinalBolt) publishLive() {
	var live int
	switch {
	case b.strCounts != nil:
		live = len(b.strCounts) + len(b.intCounts)
	case b.counts != nil:
		live = len(b.counts)
	default:
		live = len(b.states)
	}
	if live != b.lastLive {
		b.lastLive = live
		b.inst.setLive(int64(live))
	}
}

// Cleanup implements engine.Bolt: every remaining window closes at
// stream end.
func (b *FinalBolt) Cleanup(out engine.Emitter) {
	b.closeUpTo(math.MaxInt64, out)
}

// WindowStats implements engine.WindowStatsSource.
func (b *FinalBolt) WindowStats() engine.WindowStats { return b.inst.snapshot() }

// LatencySeries implements engine.LatencyStatsSource: the final stage's
// window-close staleness, published under component + ".staleness".
func (b *FinalBolt) LatencySeries() []engine.LatencySeries {
	return []engine.LatencySeries{{Suffix: ".staleness", Stats: b.inst.hist.Snapshot()}}
}

// wallClockFloor separates wall-clock event times from logical ones:
// only window ends at or above it (≈ year 2001 in Unix nanoseconds)
// produce staleness observations. Topologies that drive windows off a
// small logical clock would otherwise record "now − tiny end" garbage.
const wallClockFloor = 1e15

// advance folds one partial instance's watermark in and, once every
// instance has reported, closes all windows the combined (minimum)
// watermark has passed.
func (b *FinalBolt) advance(m mark, out engine.Emitter) {
	if old, ok := b.wms[m.from]; !ok || m.wm > old {
		b.wms[m.from] = m.wm
	}
	if len(b.wms) < m.of {
		return // some partial instance has not reported yet
	}
	wm := int64(math.MaxInt64)
	for _, v := range b.wms {
		if v < wm {
			wm = v
		}
	}
	if wm > b.noted {
		// The combined watermark rose: feed the lag gauge (marks are
		// control traffic, so this stays off the merge hot path).
		b.noted = wm
		b.inst.noteWM(wm)
	}
	b.closeUpTo(wm, out)
}

// closeUpTo emits and forgets every (key, window) whose end the
// watermark has passed, in deterministic (start, key, hash) order. The
// common advance that closes nothing is O(1): nothing can be due while
// the watermark is short of the earliest live window end.
func (b *FinalBolt) closeUpTo(wm int64, out engine.Emitter) {
	if wm <= b.closed {
		return
	}
	b.closed = wm
	if wm < b.minEnd {
		return
	}
	sp := &b.plan.spec
	if b.strCounts != nil {
		// Global-window fast path: wm has reached MaxInt64 (stream end);
		// every counter closes, in deterministic key order.
		b.closeFast(out)
		return
	}
	next := int64(math.MaxInt64)
	var due []slot
	if b.counts != nil {
		for sl := range b.counts {
			if end := sp.end(sl.start); end <= wm {
				due = append(due, sl)
			} else if end < next {
				next = end
			}
		}
	} else {
		for sl := range b.states {
			if end := sp.end(sl.start); end <= wm {
				due = append(due, sl)
			} else if end < next {
				next = end
			}
		}
	}
	b.minEnd = next
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].start != due[j].start {
			return due[i].start < due[j].start
		}
		if due[i].key != due[j].key {
			return due[i].key < due[j].key
		}
		return due[i].hash < due[j].hash
	})
	now := time.Now().UnixNano()
	for _, sl := range due {
		var st State
		if b.counts != nil {
			st = b.counts[sl]
			delete(b.counts, sl)
		} else {
			st = b.states[sl]
			delete(b.states, sl)
		}
		if end := sp.end(sl.start); end >= wallClockFloor {
			// Staleness: how far behind the window's end the flush that
			// closed it ran — the visible cost of the aggregation period
			// T (paper §V Q4). Only meaningful for wall-clock event time.
			b.inst.hist.Observe(now - end)
		}
		b.emitResult(sl, st, out, b.takeTrace(sl), len(due))
	}
	b.inst.windowsClosed.Add(int64(len(due)))
	b.publishLive()
}

// closeFast drains the global-window counter maps: string keys in
// lexicographic order, then integer keys by hash — the same
// deterministic order the slot sort yields for start-0 slots.
func (b *FinalBolt) closeFast(out engine.Emitter) {
	n := len(b.strCounts) + len(b.intCounts)
	if n == 0 {
		return
	}
	keys := make([]string, 0, len(b.strCounts))
	for k := range b.strCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Restore the key's routing hash on the Result (the fast-path
		// counter map does not carry it): one hash per closed key, at
		// stream end only.
		t := engine.Tuple{Key: k}
		// The fast-path merge tagged traces on the bare key slot.
		b.emitResult(slot{key: k, hash: t.RouteKey()}, b.strCounts[k], out, b.takeTrace(slot{key: k}), n)
	}
	hashes := make([]uint64, 0, len(b.intCounts))
	for h := range b.intCounts {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes {
		b.emitResult(slot{hash: h}, b.intCounts[h], out, b.takeTrace(slot{hash: h}), n)
	}
	clear(b.strCounts)
	clear(b.intCounts)
	b.inst.windowsClosed.Add(int64(n))
	b.publishLive()
}

// emitResult ships one closed (key, window) downstream. id is the
// trace riding the slot (0: untraced); closing is the size of the
// close batch the slot belongs to.
func (b *FinalBolt) emitResult(sl slot, st State, out engine.Emitter, id uint64, closing int) {
	sp := &b.plan.spec
	res := Result{
		Key:     sl.key,
		KeyHash: sl.hash,
		Start:   sl.start,
		End:     sp.end(sl.start),
		Value:   b.plan.agg.Output(sl.key, st),
	}
	t := engine.Tuple{Key: sl.key, Values: engine.Values{res}}
	if sl.key == "" {
		t.KeyHash = sl.hash
	}
	if id != 0 {
		t.TraceID = id
		now := trace.Now()
		trace.Add(id, trace.HopWindowClose, now, 0, sl.start, int64(closing), b.ctx.Component)
		trace.Add(id, trace.HopResult, now, 0, 0, 0, b.ctx.Component)
	}
	out.Emit(t)
}

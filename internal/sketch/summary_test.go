package sketch

import (
	"reflect"
	"testing"
)

func TestSnapshotRestoreEquivalence(t *testing.T) {
	s := New(8)
	// Overflow the capacity so evictions produce non-zero error bounds.
	for i := 0; i < 40; i++ {
		for k := uint64(0); k < 16; k++ {
			if int(k)%((i%4)+1) == 0 {
				s.Update(k)
			}
		}
	}
	sum := s.Snapshot()
	if sum.K != 8 || sum.N != s.N() || len(sum.Items) != s.Size() {
		t.Fatalf("snapshot %+v does not match sketch %v", sum, s)
	}

	r, err := FromSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != s.K() || r.N() != s.N() || r.Size() != s.Size() || r.MinCount() != s.MinCount() {
		t.Fatalf("restored %v, want %v", r, s)
	}
	if !reflect.DeepEqual(r.Items(), s.Items()) {
		t.Fatalf("restored items %v, want %v", r.Items(), s.Items())
	}
	for k := uint64(0); k < 20; k++ {
		if got, want := r.Estimate(k), s.Estimate(k); got != want {
			t.Fatalf("key %d: restored estimate %+v, want %+v", k, got, want)
		}
	}

	// The snapshot is detached: updating the original must not change it.
	before := len(sum.Items)
	s.Update(999)
	if len(sum.Items) != before {
		t.Fatal("snapshot aliased the live sketch")
	}

	// The restored sketch keeps working as a sketch.
	r.Update(1)
	if r.N() != sum.N+1 {
		t.Fatalf("restored sketch N = %d after update, want %d", r.N(), sum.N+1)
	}
}

func TestSnapshotRoundTripsThroughMerge(t *testing.T) {
	// Merged summaries can carry Err > Count for items missing from one
	// input; FromSummary must accept them (checkpoints of merged
	// sketches are legal).
	a, b := New(4), New(4)
	for i := 0; i < 50; i++ {
		a.Update(1)
		b.Update(2)
	}
	m := Merge(4, a, b)
	if _, err := FromSummary(m.Snapshot()); err != nil {
		t.Fatalf("merged snapshot rejected: %v", err)
	}
}

func TestFromSummaryRejectsCorruptCheckpoints(t *testing.T) {
	cases := []Summary{
		{K: 0, N: 1},
		{K: 1, N: -1},
		{K: 1, N: 5, Items: []Counted{{Item: 1, Count: 3}, {Item: 2, Count: 2}}},
		{K: 4, N: 5, Items: []Counted{{Item: 1, Count: -3}}},
		{K: 4, N: 5, Items: []Counted{{Item: 1, Count: 3, Err: -1}}},
		{K: 4, N: 5, Items: []Counted{{Item: 1, Count: 3}, {Item: 1, Count: 2}}},
	}
	for i, sum := range cases {
		if _, err := FromSummary(sum); err == nil {
			t.Fatalf("case %d: corrupt summary %+v accepted", i, sum)
		}
	}
}

package sketch

import (
	"strings"
	"testing"
	"testing/quick"

	"pkgstream/internal/rng"
)

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(1).UpdateN(1, 0) },
		func() { Merge(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExactWhenUnderCapacity(t *testing.T) {
	s := New(100)
	truth := map[uint64]int64{}
	src := rng.New(1)
	for i := 0; i < 5000; i++ {
		item := uint64(src.Intn(50)) // 50 < 100 distinct: no evictions
		s.Update(item)
		truth[item]++
	}
	if s.Size() != len(truth) {
		t.Fatalf("size %d, want %d", s.Size(), len(truth))
	}
	for item, want := range truth {
		got := s.Estimate(item)
		if got.Count != want || got.Err != 0 {
			t.Fatalf("item %d: got (%d ± %d), want exact %d", item, got.Count, got.Err, want)
		}
	}
	if s.MaxError() != 0 {
		t.Fatalf("MaxError %d under capacity", s.MaxError())
	}
}

func TestOverestimationGuarantee(t *testing.T) {
	// Classic guarantees: true ≤ est ≤ true + err, err ≤ N/k.
	const k = 64
	s := New(k)
	truth := map[uint64]int64{}
	z := rng.NewZipf(rng.New(2), 1.2, 10000)
	const n = 200000
	for i := 0; i < n; i++ {
		item := z.Next()
		s.Update(item)
		truth[item]++
	}
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	if s.Size() != k {
		t.Fatalf("monitored %d, want %d", s.Size(), k)
	}
	for _, c := range s.Items() {
		want := truth[c.Item]
		if c.Count < want {
			t.Fatalf("item %d: estimate %d underestimates true %d", c.Item, c.Count, want)
		}
		if c.Count-c.Err > want {
			t.Fatalf("item %d: est-err %d exceeds true %d", c.Item, c.Count-c.Err, want)
		}
	}
	if max := s.MaxError(); max > n/int64(k) {
		t.Fatalf("MaxError %d exceeds N/k = %d", max, n/int64(k))
	}
	if min := s.MinCount(); min > n/int64(k) {
		t.Fatalf("MinCount %d exceeds N/k", min)
	}
}

func TestHeavyHittersAllPresent(t *testing.T) {
	// Every item with frequency > N/k must be monitored.
	const k = 32
	s := New(k)
	truth := map[uint64]int64{}
	z := rng.NewZipf(rng.New(3), 1.5, 5000)
	const n = 100000
	for i := 0; i < n; i++ {
		item := z.Next()
		s.Update(item)
		truth[item]++
	}
	thresh := int64(n / k)
	for item, c := range truth {
		if c > thresh {
			if _, monitored := s.entries[item]; !monitored {
				t.Fatalf("heavy hitter %d (count %d > %d) missing", item, c, thresh)
			}
		}
	}
}

func TestTopOrderingAndDeterminism(t *testing.T) {
	s := New(16)
	for item, c := range map[uint64]int64{1: 100, 2: 50, 3: 25, 4: 10} {
		s.UpdateN(item, c)
	}
	top := s.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d items", len(top))
	}
	if top[0].Item != 1 || top[1].Item != 2 || top[2].Item != 3 {
		t.Fatalf("wrong order: %+v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Count < top[i].Count {
			t.Fatal("Top not sorted by count")
		}
	}
	// Larger j than size returns all.
	if got := s.Top(100); len(got) != 4 {
		t.Fatalf("Top(100) = %d items", len(got))
	}
}

func TestUpdateNWeighted(t *testing.T) {
	s := New(4)
	s.UpdateN(7, 500)
	s.Update(7)
	if got := s.Estimate(7); got.Count != 501 || got.Err != 0 {
		t.Fatalf("weighted estimate = %+v", got)
	}
}

func TestEvictionInheritsMin(t *testing.T) {
	s := New(2)
	s.UpdateN(1, 10)
	s.UpdateN(2, 5)
	s.Update(3) // evicts item 2 (min=5); item 3 gets count 6, err 5
	got := s.Estimate(3)
	if got.Count != 6 || got.Err != 5 {
		t.Fatalf("evicted-insert estimate = %+v, want (6 ± 5)", got)
	}
	// Item 2 is gone; its estimate falls back to MinCount.
	e2 := s.Estimate(2)
	if e2.Count != s.MinCount() || e2.Err != s.MinCount() {
		t.Fatalf("unmonitored estimate = %+v", e2)
	}
}

func TestBucketListInvariant(t *testing.T) {
	// After arbitrary updates the bucket list must be strictly
	// increasing from head to tail and entries must point to the bucket
	// containing them.
	s := New(8)
	src := rng.New(4)
	for i := 0; i < 5000; i++ {
		s.UpdateN(uint64(src.Intn(40)), int64(src.Intn(3)+1))
		if i%500 != 0 {
			continue
		}
		var prev int64 = -1
		seen := 0
		for b := s.head; b != nil; b = b.next {
			if b.count <= prev {
				t.Fatalf("bucket counts not strictly increasing at %d", b.count)
			}
			if len(b.items) == 0 {
				t.Fatal("empty bucket left in list")
			}
			for e := range b.items {
				if e.parent != b {
					t.Fatal("entry parent mismatch")
				}
				seen++
			}
			prev = b.count
		}
		if seen != len(s.entries) {
			t.Fatalf("bucket list holds %d entries, map holds %d", seen, len(s.entries))
		}
		// Tail reachable backwards.
		if s.tail != nil && s.tail.next != nil {
			t.Fatal("tail has next")
		}
	}
}

func TestMergeBounds(t *testing.T) {
	// Merged estimates must still never underestimate, and the merged
	// error must bound the deviation (Berinde-style mergeability).
	const k = 64
	a, b := New(k), New(k)
	truth := map[uint64]int64{}
	z := rng.NewZipf(rng.New(5), 1.3, 2000)
	for i := 0; i < 50000; i++ {
		item := z.Next()
		if i%2 == 0 {
			a.Update(item)
		} else {
			b.Update(item)
		}
		truth[item]++
	}
	m := Merge(k, a, b)
	if m.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d", m.N())
	}
	for _, c := range m.Items() {
		want := truth[c.Item]
		if c.Count < want {
			t.Fatalf("merged item %d: %d underestimates %d", c.Item, c.Count, want)
		}
		if c.Count-c.Err > want {
			t.Fatalf("merged item %d: %d - %d exceeds true %d", c.Item, c.Count, c.Err, want)
		}
	}
	// The true top item must survive the merge.
	top := m.Top(1)
	var bestItem uint64
	var bestCount int64
	for item, c := range truth {
		if c > bestCount || (c == bestCount && item < bestItem) {
			bestItem, bestCount = item, c
		}
	}
	if top[0].Item != bestItem {
		t.Fatalf("merged top = %d, want %d", top[0].Item, bestItem)
	}
}

func TestMergePropertyNoUnderestimate(t *testing.T) {
	f := func(items []uint16) bool {
		a, b := New(8), New(8)
		truth := map[uint64]int64{}
		for i, it := range items {
			item := uint64(it % 64)
			if i%2 == 0 {
				a.Update(item)
			} else {
				b.Update(item)
			}
			truth[item]++
		}
		m := Merge(8, a, b)
		for _, c := range m.Items() {
			if c.Count < truth[c.Item] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Update(1)
	if got := s.String(); !strings.Contains(got, "k=4") || !strings.Contains(got, "n=1") {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	s := New(1000)
	z := rng.NewZipf(rng.New(1), 1.1, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(z.Next())
	}
}

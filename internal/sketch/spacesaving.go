// Package sketch holds the streaming frequency summaries shared across
// the tree: the SPACESAVING algorithm of Metwally et al. (ICDT 2005)
// with the stream-summary data structure (O(1) per update) and mergeable
// summaries in the style of Berinde et al. (TODS 2010). It is the single
// implementation behind both consumers:
//
//   - internal/heavyhitters answers distributed top-k queries over
//     per-worker summaries (the paper's §VI.C application);
//   - internal/hotkey classifies keys as cold/hot/head for the
//     frequency-aware D-Choices and W-Choices routing strategies
//     (Nasir et al., ICDE 2016), one sketch per source.
//
// Keeping one copy matters beyond hygiene: the routing layer's hot-key
// thresholds lean on the same Err ≤ N/k overestimation bound the top-k
// guarantees come from.
package sketch

import (
	"fmt"
	"sort"
)

// Counted is one item of a summary or query result: an item identifier
// with its estimated count and overestimation bound.
type Counted struct {
	// Item is the item identifier.
	Item uint64
	// Count is the estimated frequency. It never underestimates:
	// true ≤ Count ≤ true + Err.
	Count int64
	// Err bounds the overestimation of Count.
	Err int64
}

// bucket groups all monitored items with the same count, forming the
// stream-summary's doubly-linked list ordered by increasing count.
type bucket struct {
	count      int64
	prev, next *bucket
	// items is the set of entries in this bucket (insertion-keyed map
	// for O(1) detach).
	items map[*entry]struct{}
}

type entry struct {
	item   uint64
	err    int64
	parent *bucket
}

// SpaceSaving maintains the top-k items of a stream in O(k) space.
// Update is O(1) amortized. The classic guarantees hold: every item with
// true frequency > N/k is in the summary, and each reported count
// overestimates the true count by at most Err ≤ N/k, where N is the
// number of updates observed.
type SpaceSaving struct {
	k       int
	n       int64
	entries map[uint64]*entry
	// head is the bucket with the smallest count.
	head, tail *bucket
}

// New returns a SpaceSaving summary with capacity k (the maximum number
// of monitored items). It panics if k <= 0.
func New(k int) *SpaceSaving {
	if k <= 0 {
		panic("sketch: New with k <= 0")
	}
	return &SpaceSaving{k: k, entries: make(map[uint64]*entry, k)}
}

// K returns the summary capacity.
func (s *SpaceSaving) K() int { return s.k }

// N returns the total weight of updates observed.
func (s *SpaceSaving) N() int64 { return s.n }

// Size returns the number of monitored items (≤ K).
func (s *SpaceSaving) Size() int { return len(s.entries) }

// Update records one occurrence of item.
func (s *SpaceSaving) Update(item uint64) { s.UpdateN(item, 1) }

// UpdateN records n occurrences of item. It panics if n <= 0.
func (s *SpaceSaving) UpdateN(item uint64, n int64) {
	if n <= 0 {
		panic("sketch: UpdateN with n <= 0")
	}
	s.n += n
	if e, ok := s.entries[item]; ok {
		s.increment(e, n)
		return
	}
	if len(s.entries) < s.k {
		e := &entry{item: item}
		s.entries[item] = e
		s.attach(e, n)
		return
	}
	// Evict from the minimum bucket: the new item inherits min as its
	// error bound — the SpaceSaving replacement step.
	minB := s.head
	var victim *entry
	for v := range minB.items {
		victim = v
		break
	}
	min := minB.count
	s.detach(victim)
	delete(s.entries, victim.item)
	e := &entry{item: item, err: min}
	s.entries[item] = e
	s.attach(e, min+n)
}

// increment moves e from its bucket to the bucket for count+n.
func (s *SpaceSaving) increment(e *entry, n int64) {
	c := e.parent.count + n
	s.detach(e)
	s.attach(e, c)
}

// attach inserts e into the bucket with the given count, creating and
// linking the bucket if needed. Search starts from the head; in the
// common n == 1 case the destination is adjacent to the old bucket, so
// the walk is O(1) amortized.
func (s *SpaceSaving) attach(e *entry, count int64) {
	// Find insertion point: the first bucket with count >= target.
	var b *bucket
	for b = s.head; b != nil && b.count < count; b = b.next {
	}
	if b != nil && b.count == count {
		b.items[e] = struct{}{}
		e.parent = b
		return
	}
	nb := &bucket{count: count, items: map[*entry]struct{}{e: {}}}
	e.parent = nb
	if b == nil { // append at tail
		nb.prev = s.tail
		if s.tail != nil {
			s.tail.next = nb
		} else {
			s.head = nb
		}
		s.tail = nb
		return
	}
	nb.next = b
	nb.prev = b.prev
	if b.prev != nil {
		b.prev.next = nb
	} else {
		s.head = nb
	}
	b.prev = nb
}

// detach removes e from its bucket, unlinking the bucket if it empties.
func (s *SpaceSaving) detach(e *entry) {
	b := e.parent
	delete(b.items, e)
	e.parent = nil
	if len(b.items) > 0 {
		return
	}
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.tail = b.prev
	}
}

// Estimate returns the estimated count and error bound for item. For
// unmonitored items it returns (MinCount, MinCount): the count is at most
// the current minimum.
func (s *SpaceSaving) Estimate(item uint64) Counted {
	if e, ok := s.entries[item]; ok {
		return Counted{Item: item, Count: e.parent.count, Err: e.err}
	}
	min := s.MinCount()
	return Counted{Item: item, Count: min, Err: min}
}

// MinCount returns the smallest monitored count, or 0 while the summary
// has spare capacity (unmonitored items then have true count 0).
func (s *SpaceSaving) MinCount() int64 {
	if len(s.entries) < s.k || s.head == nil {
		return 0
	}
	return s.head.count
}

// MaxError returns the largest overestimation bound in the summary; it is
// at most N/k.
func (s *SpaceSaving) MaxError() int64 {
	var max int64
	for _, e := range s.entries {
		if e.err > max {
			max = e.err
		}
	}
	return max
}

// Top returns the j highest-count items in decreasing count order
// (all monitored items if j ≥ Size).
func (s *SpaceSaving) Top(j int) []Counted {
	out := make([]Counted, 0, len(s.entries))
	for b := s.tail; b != nil; b = b.prev {
		for e := range b.items {
			out = append(out, Counted{Item: e.item, Count: b.count, Err: e.err})
		}
	}
	// Within a bucket, map order is arbitrary: fix it for determinism.
	sort.Slice(out, func(i, k int) bool {
		if out[i].Count != out[k].Count {
			return out[i].Count > out[k].Count
		}
		return out[i].Item < out[k].Item
	})
	if j < len(out) {
		out = out[:j]
	}
	return out
}

// Items returns all monitored items in decreasing count order.
func (s *SpaceSaving) Items() []Counted { return s.Top(s.k) }

// Merge combines several summaries into a fresh one with the given
// capacity, following Berinde et al.: counts of common items add; an
// item missing from a summary may have been seen up to that summary's
// MinCount times, so that bound joins its error. The result's guarantees
// degrade by the sum of the inputs' error terms — which is why the
// paper's PKG split (exactly two summaries per key) beats shuffle
// grouping (W summaries per key).
func Merge(k int, summaries ...*SpaceSaving) *SpaceSaving {
	if k <= 0 {
		panic("sketch: Merge with k <= 0")
	}
	type acc struct {
		count int64
		err   int64
	}
	merged := map[uint64]*acc{}
	var totalN int64
	for _, s := range summaries {
		totalN += s.N()
		for _, c := range s.Items() {
			a := merged[c.Item]
			if a == nil {
				a = &acc{}
				merged[c.Item] = a
			}
			a.count += c.Count
			a.err += c.Err
		}
	}
	// Items absent from a summary contribute at most that summary's min.
	for item, a := range merged {
		for _, s := range summaries {
			if _, ok := s.entries[item]; !ok {
				min := s.MinCount()
				a.count += min
				a.err += 2 * min // min counts both as estimate and as slack
			}
		}
		_ = item
	}
	items := make([]Counted, 0, len(merged))
	for item, a := range merged {
		items = append(items, Counted{Item: item, Count: a.count, Err: a.err})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Item < items[j].Item
	})
	out := New(k)
	out.n = totalN
	for i := len(items) - 1; i >= 0; i-- {
		if i >= k {
			continue
		}
		c := items[i]
		e := &entry{item: c.Item, err: c.Err}
		out.entries[c.Item] = e
		out.attach(e, c.Count)
	}
	return out
}

// Summary is a serializable snapshot of a SpaceSaving sketch: the
// capacity, the total observation weight, and every monitored item with
// its estimate and error bound. It is the checkpoint form the transport
// layer persists (via internal/wire) so a restarted source does not
// route head keys as cold until its sketch re-warms.
type Summary struct {
	// K is the summary capacity.
	K int
	// N is the total weight of updates observed.
	N int64
	// Items are the monitored items in decreasing count order.
	Items []Counted
}

// Snapshot captures the sketch's current state. The snapshot is
// detached: later updates do not affect it.
func (s *SpaceSaving) Snapshot() Summary {
	return Summary{K: s.k, N: s.n, Items: s.Items()}
}

// FromSummary rebuilds a sketch from a snapshot. The restored sketch is
// equivalent to the one snapshotted: same capacity, same weight, same
// per-item estimates and error bounds.
func FromSummary(sum Summary) (*SpaceSaving, error) {
	if sum.K <= 0 {
		return nil, fmt.Errorf("sketch: summary capacity %d", sum.K)
	}
	if len(sum.Items) > sum.K {
		return nil, fmt.Errorf("sketch: summary holds %d items over capacity %d",
			len(sum.Items), sum.K)
	}
	if sum.N < 0 {
		return nil, fmt.Errorf("sketch: negative summary weight %d", sum.N)
	}
	out := New(sum.K)
	out.n = sum.N
	// Insert in increasing count order so attach's head-first walk stays
	// cheap, and reject duplicates/negative counts (a corrupt checkpoint
	// must not build an inconsistent stream-summary).
	for i := len(sum.Items) - 1; i >= 0; i-- {
		c := sum.Items[i]
		// Merged summaries may carry Err > Count (missing-item slack adds
		// twice), so only negative values are rejected.
		if c.Count < 0 || c.Err < 0 {
			return nil, fmt.Errorf("sketch: summary item %d has count %d, err %d",
				c.Item, c.Count, c.Err)
		}
		if _, dup := out.entries[c.Item]; dup {
			return nil, fmt.Errorf("sketch: summary repeats item %d", c.Item)
		}
		e := &entry{item: c.Item, err: c.Err}
		out.entries[c.Item] = e
		out.attach(e, c.Count)
	}
	return out, nil
}

// String summarizes the sketch for debugging.
func (s *SpaceSaving) String() string {
	return fmt.Sprintf("SpaceSaving(k=%d, n=%d, monitored=%d, min=%d)",
		s.k, s.n, len(s.entries), s.MinCount())
}

package wordcount

import (
	"fmt"
	"testing"
	"testing/quick"

	"pkgstream/internal/engine"
	"pkgstream/internal/rng"
)

func TestTopOrderingAndTies(t *testing.T) {
	counts := map[string]int64{"a": 5, "b": 5, "c": 10, "d": 1}
	top := Top(counts, 3)
	want := []WordCount{{"c", 10}, {"a", 5}, {"b", 5}}
	if len(top) != 3 {
		t.Fatalf("Top(3) = %d entries", len(top))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("Top = %+v, want %+v", top, want)
		}
	}
	if got := Top(counts, 0); got != nil {
		t.Fatal("Top(0) should be nil")
	}
	if got := Top(counts, 100); len(got) != 4 {
		t.Fatalf("Top(100) = %d entries", len(got))
	}
}

func TestTopMatchesNaiveSort(t *testing.T) {
	src := rng.New(1)
	f := func(n uint8, k uint8) bool {
		counts := map[string]int64{}
		for i := 0; i < int(n); i++ {
			counts[fmt.Sprintf("w%d", src.Intn(30))] += int64(src.Intn(20))
		}
		kk := int(k%10) + 1
		top := Top(counts, kk)
		// Verify: sorted desc, tie alphabetical, and no excluded entry
		// beats the last included one.
		for i := 1; i < len(top); i++ {
			if less(top[i-1], top[i]) {
				return false
			}
		}
		if len(top) < kk && len(top) != len(counts) {
			return false
		}
		if len(top) == 0 {
			return len(counts) == 0
		}
		last := top[len(top)-1]
		inTop := map[string]bool{}
		for _, wc := range top {
			inTop[wc.Word] = true
		}
		for w, c := range counts {
			if !inTop[w] && less(last, WordCount{w, c}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	base := Config{Words: 100, Vocab: 50, P1: 0.1, Sources: 1, Workers: 2, Grouping: UsePKG}
	bad := []func(*Config){
		func(c *Config) { c.Words = 0 },
		func(c *Config) { c.Vocab = 0 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Sources = 0 },
		func(c *Config) { c.P1 = 0 },
		func(c *Config) { c.P1 = 1 },
		func(c *Config) { c.Grouping = "nope" },
		func(c *Config) { c.FlushEvery = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, _, err := Build(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// runTopology builds and runs a word count topology, returning the output
// and per-partial-counter loads.
func runTopology(t *testing.T, cfg Config) (*Output, []int64) {
	t.Helper()
	top, out, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 256})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return out, rt.Stats().Loads("counter.partial")
}

func TestEndToEndCountsExact(t *testing.T) {
	// Whatever the grouping, the aggregated totals must equal the number
	// of emitted words, and the top-1 word must be the Zipf head.
	for _, g := range []GroupingChoice{UsePKG, UseKG, UseSG} {
		cfg := Config{
			Words: 20000, Vocab: 2000, P1: 0.09, Sources: 2, Workers: 5,
			FlushEvery: 500, K: 10, Grouping: g, Seed: 42,
		}
		out, _ := runTopology(t, cfg)
		wantTotal := int64(cfg.Words * cfg.Sources)
		if out.TotalWords != wantTotal {
			t.Errorf("%s: aggregated %d words, want %d", g, out.TotalWords, wantTotal)
		}
		if len(out.Top) != 10 {
			t.Errorf("%s: top has %d entries", g, len(out.Top))
		}
		if out.Top[0].Word != "w1" {
			t.Errorf("%s: top word = %s, want w1", g, out.Top[0].Word)
		}
		// Top-1 frequency ≈ p1.
		frac := float64(out.Top[0].Count) / float64(out.TotalWords)
		if frac < 0.06 || frac > 0.12 {
			t.Errorf("%s: top word fraction %v, want ≈0.09", g, frac)
		}
	}
}

func TestGroupingsAgreeOnTotals(t *testing.T) {
	// The same config under different groupings must produce identical
	// aggregate histograms (same seed → same emitted words).
	mk := func(g GroupingChoice) *Output {
		out, _ := runTopology(t, Config{
			Words: 10000, Vocab: 1000, P1: 0.08, Sources: 1, Workers: 4,
			FlushEvery: 300, K: 20, Grouping: g, Seed: 7,
		})
		return out
	}
	pkg, kg, sg := mk(UsePKG), mk(UseKG), mk(UseSG)
	if pkg.TotalWords != kg.TotalWords || kg.TotalWords != sg.TotalWords {
		t.Fatalf("totals differ: %d %d %d", pkg.TotalWords, kg.TotalWords, sg.TotalWords)
	}
	for i := range pkg.Top {
		if pkg.Top[i] != kg.Top[i] || kg.Top[i] != sg.Top[i] {
			t.Fatalf("top-k differ at %d: %+v %+v %+v", i, pkg.Top[i], kg.Top[i], sg.Top[i])
		}
	}
}

func TestPKGBalancesCountersBetterThanKG(t *testing.T) {
	cfg := Config{
		Words: 30000, Vocab: 3000, P1: 0.15, Sources: 2, Workers: 5,
		FlushEvery: 1000, K: 5, Seed: 11,
	}
	imbalance := func(loads []int64) float64 {
		var max, sum int64
		for _, l := range loads {
			if l > max {
				max = l
			}
			sum += l
		}
		return float64(max) - float64(sum)/float64(len(loads))
	}
	cfg.Grouping = UseKG
	_, kgLoads := runTopology(t, cfg)
	cfg.Grouping = UsePKG
	_, pkgLoads := runTopology(t, cfg)
	if imbalance(pkgLoads)*3 > imbalance(kgLoads) {
		t.Fatalf("PKG counter imbalance %v not well below KG %v",
			imbalance(pkgLoads), imbalance(kgLoads))
	}
}

func TestAggregationOverheadOrdering(t *testing.T) {
	// Partials merged: KG flushes each word from exactly one worker; PKG
	// from ≤2; SG up to W. With several flush rounds the ordering shows
	// in total merged partials.
	mk := func(g GroupingChoice) int64 {
		out, _ := runTopology(t, Config{
			Words: 30000, Vocab: 500, P1: 0.08, Sources: 1, Workers: 8,
			FlushEvery: 2000, K: 5, Grouping: g, Seed: 3,
		})
		return out.PartialsMerged
	}
	kg, pkg, sg := mk(UseKG), mk(UsePKG), mk(UseSG)
	if !(kg <= pkg && pkg < sg) {
		t.Fatalf("partials merged ordering KG ≤ PKG < SG violated: %d %d %d", kg, pkg, sg)
	}
}

func TestMemoryResidencyOrdering(t *testing.T) {
	// Max live counters per worker: SG replicates hot words everywhere,
	// so its per-worker residency is the largest.
	mk := func(g GroupingChoice) int {
		out, _ := runTopology(t, Config{
			Words: 40000, Vocab: 2000, P1: 0.08, Sources: 1, Workers: 4,
			FlushEvery: 0 /* only final flush */, K: 5, Grouping: g, Seed: 5,
		})
		return out.MaxCounterResidency
	}
	kg, pkg, sg := mk(UseKG), mk(UsePKG), mk(UseSG)
	if !(pkg <= 2*kg) {
		t.Fatalf("PKG residency %d above 2×KG %d", pkg, kg)
	}
	if !(sg >= pkg) {
		t.Fatalf("SG residency %d below PKG %d", sg, pkg)
	}
}

func TestCleanupFlushReachesSink(t *testing.T) {
	// Regression for the seed's aggregatorBolt.Cleanup discarding its
	// Emitter: with FlushEvery = 0 every count travels the partial →
	// final → sink chain purely through Cleanup flushes, so any stage
	// that drops its Cleanup emissions loses the whole stream.
	out, _ := runTopology(t, Config{
		Words: 5000, Vocab: 800, P1: 0.1, Sources: 2, Workers: 4,
		FlushEvery: 0, K: 5, Grouping: UsePKG, Seed: 9,
	})
	if out.TotalWords != 10000 {
		t.Fatalf("sink received %d words, want 10000 — Cleanup flush lost", out.TotalWords)
	}
	if out.PartialsMerged == 0 || out.FlushRounds == 0 {
		t.Fatalf("no partials flowed: merged=%d rounds=%d", out.PartialsMerged, out.FlushRounds)
	}
	if len(out.Top) != 5 || out.Top[0].Word != "w1" {
		t.Fatalf("Top = %+v", out.Top)
	}
}

func TestFlushTrafficGrowsAsTShrinks(t *testing.T) {
	// The Figure 5(b) lever on the live topology: a shorter aggregation
	// period T trades memory (fewer live counters) for flush traffic.
	mk := func(T int) *Output {
		out, _ := runTopology(t, Config{
			Words: 20000, Vocab: 2000, P1: 0.09, Sources: 1, Workers: 4,
			FlushEvery: T, K: 5, Grouping: UsePKG, Seed: 13,
		})
		return out
	}
	short, long := mk(200), mk(10000)
	if short.MaxCounterResidency >= long.MaxCounterResidency {
		t.Errorf("short T residency %d not below long T %d",
			short.MaxCounterResidency, long.MaxCounterResidency)
	}
	if short.PartialsFlushed <= long.PartialsFlushed {
		t.Errorf("short T flushed %d partials, not above long T %d",
			short.PartialsFlushed, long.PartialsFlushed)
	}
	if short.TotalWords != long.TotalWords {
		t.Errorf("totals differ across T: %d vs %d", short.TotalWords, long.TotalWords)
	}
}

func BenchmarkTopK(b *testing.B) {
	counts := map[string]int64{}
	src := rng.New(1)
	for i := 0; i < 100000; i++ {
		counts[fmt.Sprintf("w%d", i)] = int64(src.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Top(counts, 10)
	}
}

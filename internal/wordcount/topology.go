package wordcount

import (
	"fmt"
	"sync"

	"pkgstream/internal/engine"
	"pkgstream/internal/rng"
)

// GroupingChoice selects the stream partitioning of the word stream.
type GroupingChoice string

// The three configurations the paper deploys on Storm (§V Q4).
const (
	UsePKG GroupingChoice = "pkg"
	UseKG  GroupingChoice = "kg"
	UseSG  GroupingChoice = "sg"
)

// Config parameterizes a streaming top-k word count topology.
type Config struct {
	// Words is the number of words each spout instance emits.
	Words int
	// Vocab is the vocabulary size; word w<i> is drawn Zipf-distributed
	// with the given P1 head probability.
	Vocab uint64
	// P1 is the frequency of the most common word.
	P1 float64
	// Sources is the spout parallelism.
	Sources int
	// Workers is the counter parallelism.
	Workers int
	// FlushEvery makes each counter flush its partials downstream after
	// this many words (count-based stand-in for the paper's T-second
	// aggregation period; deterministic under test).
	FlushEvery int
	// K is the top-k size.
	K int
	// Grouping selects KG, SG, or PKG.
	Grouping GroupingChoice
	// Seed makes runs reproducible.
	Seed uint64
}

// Output collects the result of a topology run.
type Output struct {
	mu sync.Mutex
	// Top is the final top-k.
	Top []WordCount
	// TotalWords is the total number of occurrences aggregated.
	TotalWords int64
	// PartialsMerged is the number of partial counters the aggregator
	// consumed.
	PartialsMerged int64
	// MaxCounterResidency is the largest number of live partial counters
	// observed on any single counter instance (memory footprint).
	MaxCounterResidency int
}

// wordSpout emits Zipf-distributed words "w<rank>". Each instance seeds
// its generator from its instance index so parallel sources emit
// independent sub-streams of the same distribution.
type wordSpout struct {
	n     int
	i     int
	vocab uint64
	s     float64
	seed  uint64
	z     *rng.Zipf
}

func (s *wordSpout) Open(ctx *engine.Context) {
	s.z = rng.NewZipf(rng.NewStream(s.seed, uint64(ctx.Index)), s.s, s.vocab)
}

func (s *wordSpout) Close() {}

func (s *wordSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(engine.Tuple{Key: fmt.Sprintf("w%d", s.z.Next())})
	s.i++
	return true
}

// counterBolt keeps partial counts and flushes every FlushEvery words
// (and at Cleanup).
type counterBolt struct {
	c          *Counter
	flushEvery int
	out        *Output
}

func (b *counterBolt) Prepare(*engine.Context) { b.c = NewCounter() }

func (b *counterBolt) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		b.flush(out)
		return
	}
	b.c.Add(t.Key)
	if b.flushEvery > 0 && b.c.Seen() >= int64(b.flushEvery) {
		b.flush(out)
	}
}

func (b *counterBolt) Cleanup(out engine.Emitter) { b.flush(out) }

func (b *counterBolt) flush(out engine.Emitter) {
	if n := b.c.Len(); n > 0 {
		b.out.mu.Lock()
		if n > b.out.MaxCounterResidency {
			b.out.MaxCounterResidency = n
		}
		b.out.mu.Unlock()
	}
	for _, wc := range b.c.Flush() {
		out.Emit(engine.Tuple{Key: wc.Word, Values: engine.Values{wc.Count}})
	}
}

// aggregatorBolt merges partials and publishes the final top-k at
// Cleanup.
type aggregatorBolt struct {
	agg *Aggregator
	k   int
	out *Output
}

func (b *aggregatorBolt) Prepare(*engine.Context) { b.agg = NewAggregator() }

func (b *aggregatorBolt) Execute(t engine.Tuple, _ engine.Emitter) {
	if t.Tick {
		return
	}
	b.agg.Merge(WordCount{Word: t.Key, Count: t.Values[0].(int64)})
}

func (b *aggregatorBolt) Cleanup(_ engine.Emitter) {
	b.out.mu.Lock()
	defer b.out.mu.Unlock()
	b.out.Top = b.agg.Top(b.k)
	b.out.TotalWords = b.agg.Total()
	b.out.PartialsMerged = b.agg.Merged()
}

// Build assembles the streaming top-k word count topology: word spouts →
// counters (grouped per Config.Grouping) → a single aggregator. The
// returned Output is filled when the topology finishes.
func Build(cfg Config) (*engine.Topology, *Output, error) {
	if cfg.Words <= 0 || cfg.Vocab == 0 || cfg.Workers <= 0 || cfg.Sources <= 0 {
		return nil, nil, fmt.Errorf("wordcount: Words, Vocab, Sources and Workers must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.P1 <= 0 || cfg.P1 >= 1 {
		return nil, nil, fmt.Errorf("wordcount: P1 = %v out of (0,1)", cfg.P1)
	}
	var grouping engine.GroupingFactory
	switch cfg.Grouping {
	case UsePKG:
		grouping = engine.Partial()
	case UseKG:
		grouping = engine.Key()
	case UseSG:
		grouping = engine.Shuffle()
	default:
		return nil, nil, fmt.Errorf("wordcount: unknown grouping %q", cfg.Grouping)
	}

	out := &Output{}
	s := rng.SolveZipfExponent(cfg.Vocab, cfg.P1)
	b := engine.NewBuilder("wordcount-"+string(cfg.Grouping), cfg.Seed)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: cfg.Words, vocab: cfg.Vocab, s: s, seed: cfg.Seed}
	}, cfg.Sources)
	b.AddBolt("counter", func() engine.Bolt {
		return &counterBolt{flushEvery: cfg.FlushEvery, out: out}
	}, cfg.Workers).Input("words", grouping)
	b.AddBolt("aggregator", func() engine.Bolt {
		return &aggregatorBolt{k: cfg.K, out: out}
	}, 1).Input("counter", engine.Key())
	top, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return top, out, nil
}

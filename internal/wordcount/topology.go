package wordcount

import (
	"fmt"
	"sync"

	"pkgstream/internal/engine"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/rng"
	"pkgstream/internal/window"
)

// GroupingChoice selects the stream partitioning of the word stream.
type GroupingChoice string

// The three configurations the paper deploys on Storm (§V Q4), plus the
// frequency-aware strategies of the ICDE 2016 follow-up.
const (
	UsePKG      GroupingChoice = "pkg"
	UseKG       GroupingChoice = "kg"
	UseSG       GroupingChoice = "sg"
	UseDChoices GroupingChoice = "dchoices"
	UseWChoices GroupingChoice = "wchoices"
)

// Config parameterizes a streaming top-k word count topology.
type Config struct {
	// Words is the number of words each spout instance emits.
	Words int
	// Vocab is the vocabulary size; word w<i> is drawn Zipf-distributed
	// with the given P1 head probability.
	Vocab uint64
	// P1 is the frequency of the most common word.
	P1 float64
	// Sources is the spout parallelism.
	Sources int
	// Workers is the partial-counter parallelism.
	Workers int
	// FlushEvery is the aggregation period T as a tuple count: each
	// partial instance flushes its live counters downstream after this
	// many words (deterministic under test; 0 flushes only at stream
	// end).
	FlushEvery int
	// K is the top-k size.
	K int
	// Grouping selects KG, SG, or PKG.
	Grouping GroupingChoice
	// Seed makes runs reproducible.
	Seed uint64
}

// Output collects the result of a topology run.
type Output struct {
	mu sync.Mutex
	// Top is the final top-k.
	Top []WordCount
	// TotalWords is the total number of occurrences aggregated.
	TotalWords int64
	// PartialsMerged is the number of partial counters the final stage
	// consumed — the aggregation overhead PKG bounds at 2 per word per
	// period and shuffle grouping does not.
	PartialsMerged int64
	// MaxCounterResidency is the largest number of live partial
	// counters observed on any single partial instance (the memory
	// footprint of Figure 5(b)).
	MaxCounterResidency int
	// PartialsFlushed is the total number of partial counters flushed
	// downstream across all periods (the flush traffic shrinking T
	// buys memory with).
	PartialsFlushed int64
	// FlushRounds is the number of flushes the partial stage ran.
	FlushRounds int64
}

// wordSpout emits Zipf-distributed words "w<rank>". Each instance seeds
// its generator from its instance index so parallel sources emit
// independent sub-streams of the same distribution.
type wordSpout struct {
	n     int
	i     int
	vocab uint64
	s     float64
	seed  uint64
	z     *rng.Zipf
}

func (s *wordSpout) Open(ctx *engine.Context) {
	s.z = rng.NewZipf(rng.NewStream(s.seed, uint64(ctx.Index)), s.s, s.vocab)
}

func (s *wordSpout) Close() {}

func (s *wordSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(engine.Tuple{Key: fmt.Sprintf("w%d", s.z.Next())})
	s.i++
	return true
}

// topkBolt is the selection sink: the window subsystem's final stage
// delivers each word's merged total exactly once per window, and this
// bolt keeps the bounded top-k heap plus the run's aggregate counters.
// It selects, it does not aggregate — all merging happens in
// internal/window.
type topkBolt struct {
	k    int
	out  *Output
	plan *window.Plan

	h     wcHeap
	total int64
}

func (b *topkBolt) Prepare(*engine.Context) {}

func (b *topkBolt) Execute(t engine.Tuple, _ engine.Emitter) {
	if t.Tick {
		return
	}
	res := t.Values[0].(window.Result)
	n := res.Value.(int64)
	b.total += n
	b.h.offer(WordCount{Word: res.Key, Count: n}, b.k)
}

func (b *topkBolt) Cleanup(engine.Emitter) {
	top := b.h.drain()
	parts := b.plan.PartialStats()
	b.out.mu.Lock()
	defer b.out.mu.Unlock()
	b.out.Top = top
	b.out.TotalWords = b.total
	b.out.PartialsMerged = b.plan.FinalStats().Merged
	b.out.MaxCounterResidency = int(parts.MaxLive)
	b.out.PartialsFlushed = parts.PartialsOut
	b.out.FlushRounds = parts.Flushes
}

// Build assembles the streaming top-k word count topology: word spouts →
// windowed two-phase count (partial counters grouped per
// Config.Grouping, merged by a single final instance) → a top-k
// selection sink. The returned Output is filled when the topology
// finishes.
func Build(cfg Config) (*engine.Topology, *Output, error) {
	if cfg.Words <= 0 || cfg.Vocab == 0 || cfg.Workers <= 0 || cfg.Sources <= 0 {
		return nil, nil, fmt.Errorf("wordcount: Words, Vocab, Sources and Workers must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.P1 <= 0 || cfg.P1 >= 1 {
		return nil, nil, fmt.Errorf("wordcount: P1 = %v out of (0,1)", cfg.P1)
	}
	var grouping engine.GroupingFactory
	switch cfg.Grouping {
	case UsePKG:
		grouping = engine.Partial()
	case UseKG:
		grouping = engine.Key()
	case UseSG:
		grouping = engine.Shuffle()
	case UseDChoices:
		grouping = engine.DChoices(hotkey.Config{})
	case UseWChoices:
		grouping = engine.WChoices(hotkey.Config{})
	default:
		return nil, nil, fmt.Errorf("wordcount: unknown grouping %q", cfg.Grouping)
	}

	out := &Output{}
	s := rng.SolveZipfExponent(cfg.Vocab, cfg.P1)
	plan, err := window.NewPlan(window.Count{}, window.Spec{EveryTuples: cfg.FlushEvery})
	if err != nil {
		return nil, nil, fmt.Errorf("wordcount: %v", err)
	}
	b := engine.NewBuilder("wordcount-"+string(cfg.Grouping), cfg.Seed)
	b.AddSpout("words", func() engine.Spout {
		return &wordSpout{n: cfg.Words, vocab: cfg.Vocab, s: s, seed: cfg.Seed}
	}, cfg.Sources)
	b.WindowedAggregate("counter", plan, cfg.Workers).Input("words", grouping)
	b.AddBolt("topk", func() engine.Bolt {
		return &topkBolt{k: cfg.K, out: out, plan: plan}
	}, 1).Input("counter", engine.Global())
	top, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return top, out, nil
}

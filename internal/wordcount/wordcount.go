// Package wordcount implements the paper's running example (§II.A):
// streaming top-k word count. The counting itself is the shared windowed
// two-phase aggregation of internal/window — partial counters on the
// workers, periodically flushed and merged downstream — so this package
// only supplies the Zipf word source, the top-k selection sink, and the
// topology wiring.
//
// Under key grouping each word has exactly one partial counter (no
// merging needed, but skewed load); under shuffle grouping a word may
// have W partial counters (balanced load, O(W·K) memory); under partial
// key grouping each word has at most two — the paper's middle ground,
// with near-perfect load balance at O(2K) memory and O(1) aggregation
// per word.
package wordcount

import (
	"container/heap"
)

// WordCount is a word with its (partial or total) count.
type WordCount struct {
	Word  string
	Count int64
}

// Top returns the k highest-count entries of a count map in decreasing
// count order, using a bounded min-heap (O(K log k)).
func Top(counts map[string]int64, k int) []WordCount {
	if k <= 0 {
		return nil
	}
	h := &wcHeap{}
	for w, n := range counts {
		h.offer(WordCount{Word: w, Count: n}, k)
	}
	return h.drain()
}

// less orders WordCounts ascending: by count, then reverse-alphabetical,
// so that popping yields the smallest and the final slice is sorted by
// decreasing count with alphabetical tie-break.
func less(a, b WordCount) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Word > b.Word
}

// wcHeap is a bounded min-heap keeping the k largest WordCounts.
type wcHeap []WordCount

func (h wcHeap) Len() int           { return len(h) }
func (h wcHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h wcHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *wcHeap) Push(x any)        { *h = append(*h, x.(WordCount)) }
func (h *wcHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// offer admits wc if it belongs in the top k, evicting the current
// minimum.
func (h *wcHeap) offer(wc WordCount, k int) {
	if h.Len() < k {
		heap.Push(h, wc)
		return
	}
	if less((*h)[0], wc) {
		(*h)[0] = wc
		heap.Fix(h, 0)
	}
}

// drain empties the heap into a slice sorted by decreasing count
// (alphabetical tie-break).
func (h *wcHeap) drain() []WordCount {
	out := make([]WordCount, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(WordCount)
	}
	return out
}

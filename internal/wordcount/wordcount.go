// Package wordcount implements the paper's running example (§II.A):
// streaming top-k word count. Counter workers hold partial counts for the
// words routed to them and periodically flush them to a single aggregator
// that merges partials and maintains the global top-k.
//
// Under key grouping each word has exactly one counter (no aggregation
// needed, but skewed load); under shuffle grouping a word may have W
// partial counters (balanced load, O(W·K) memory); under partial key
// grouping each word has at most two partial counters — the paper's
// middle ground, with near-perfect load balance at O(2K) memory and O(1)
// aggregation per word.
package wordcount

import (
	"container/heap"
	"sort"
)

// WordCount is a word with its (partial or total) count.
type WordCount struct {
	Word  string
	Count int64
}

// Counter accumulates partial counts on one worker.
type Counter struct {
	counts map[string]int64
	seen   int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add records one occurrence of word.
func (c *Counter) Add(word string) { c.AddN(word, 1) }

// AddN records n occurrences of word.
func (c *Counter) AddN(word string, n int64) {
	c.counts[word] += n
	c.seen += n
}

// Len returns the number of live partial counters — the worker's memory
// footprint in the paper's Figure 5(b).
func (c *Counter) Len() int { return len(c.counts) }

// Seen returns the number of word occurrences recorded since the last
// flush.
func (c *Counter) Seen() int64 { return c.seen }

// Flush returns all partial counts (sorted by word for determinism) and
// resets the counter — the periodic aggregation step.
func (c *Counter) Flush() []WordCount {
	out := make([]WordCount, 0, len(c.counts))
	for w, n := range c.counts {
		out = append(out, WordCount{Word: w, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Word < out[j].Word })
	c.counts = make(map[string]int64)
	c.seen = 0
	return out
}

// Aggregator merges partial counts into totals and answers top-k queries.
type Aggregator struct {
	totals map[string]int64
	merged int64
}

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{totals: make(map[string]int64)}
}

// Merge folds one partial count into the totals.
func (a *Aggregator) Merge(wc WordCount) {
	a.totals[wc.Word] += wc.Count
	a.merged++
}

// MergeAll folds a batch of partial counts.
func (a *Aggregator) MergeAll(wcs []WordCount) {
	for _, wc := range wcs {
		a.Merge(wc)
	}
}

// Merged returns the number of partial counters merged — the aggregation
// overhead that PKG bounds at 2 per word and shuffle grouping does not.
func (a *Aggregator) Merged() int64 { return a.merged }

// Total returns the total word occurrences aggregated.
func (a *Aggregator) Total() int64 {
	var t int64
	for _, n := range a.totals {
		t += n
	}
	return t
}

// Distinct returns the number of distinct words aggregated.
func (a *Aggregator) Distinct() int { return len(a.totals) }

// Count returns the aggregated count of one word.
func (a *Aggregator) Count(word string) int64 { return a.totals[word] }

// Top returns the k most frequent words in decreasing count order (ties
// broken alphabetically).
func (a *Aggregator) Top(k int) []WordCount { return Top(a.totals, k) }

// Top returns the k highest-count entries of a count map in decreasing
// count order, using a bounded min-heap (O(K log k)).
func Top(counts map[string]int64, k int) []WordCount {
	if k <= 0 {
		return nil
	}
	h := &wcHeap{}
	heap.Init(h)
	for w, n := range counts {
		wc := WordCount{Word: w, Count: n}
		if h.Len() < k {
			heap.Push(h, wc)
			continue
		}
		if less((*h)[0], wc) {
			(*h)[0] = wc
			heap.Fix(h, 0)
		}
	}
	out := make([]WordCount, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(WordCount)
	}
	return out
}

// less orders WordCounts ascending: by count, then reverse-alphabetical,
// so that popping yields the smallest and the final slice is sorted by
// decreasing count with alphabetical tie-break.
func less(a, b WordCount) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Word > b.Word
}

type wcHeap []WordCount

func (h wcHeap) Len() int           { return len(h) }
func (h wcHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h wcHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *wcHeap) Push(x any)        { *h = append(*h, x.(WordCount)) }
func (h *wcHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Package rebalance implements the alternative the paper discusses and
// rejects in §II.B — key grouping with operator/key migration (in the
// style of Flux and Borealis) — and answers the question its conclusion
// leaves open: "can a solution based on rebalancing be practical?".
//
// The partitioner routes by hash until a periodic imbalance check fires;
// the check migrates the hottest keys away from the most loaded workers.
// Unlike PKG this preserves key atomicity (each key is on exactly one
// worker at any time), but it pays for that with everything the paper
// warns about, all of which this implementation measures:
//
//   - a routing-table entry for every migrated key, which all sources
//     would need to agree on (coordination);
//   - per-key frequency state to know *which* keys to migrate;
//   - migration cost proportional to the state of the moved keys;
//   - a floor on achievable balance: a single key with frequency above
//     the ideal share 1/W cannot be fixed without splitting it.
package rebalance

import (
	"fmt"

	"pkgstream/internal/hash"
	"pkgstream/internal/metrics"
)

// Config parameterizes the rebalancing partitioner.
type Config struct {
	// Workers is the number of downstream workers.
	Workers int
	// Seed drives the base hash function.
	Seed uint64
	// CheckEvery is the number of messages between imbalance checks
	// (default: 10_000).
	CheckEvery int64
	// Threshold triggers migration when the hottest worker's *recent*
	// load exceeds (1 + Threshold) times the average recent load
	// (default 0.1 = 10%).
	Threshold float64
	// MaxMigrationsPerCheck bounds how many keys may move per check
	// (default 8) — real systems bound migration churn.
	MaxMigrationsPerCheck int
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 {
		return c, fmt.Errorf("rebalance: Workers must be positive")
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 10_000
	}
	if c.CheckEvery < 0 {
		return c, fmt.Errorf("rebalance: CheckEvery must be positive")
	}
	if c.Threshold == 0 {
		c.Threshold = 0.1
	}
	if c.Threshold < 0 {
		return c, fmt.Errorf("rebalance: Threshold must be non-negative")
	}
	if c.MaxMigrationsPerCheck == 0 {
		c.MaxMigrationsPerCheck = 8
	}
	if c.MaxMigrationsPerCheck < 0 {
		return c, fmt.Errorf("rebalance: MaxMigrationsPerCheck must be positive")
	}
	return c, nil
}

// Partitioner is key grouping with periodic key migration. It implements
// route.Router.
type Partitioner struct {
	cfg  Config
	seed uint64

	// overrides maps migrated keys to their current worker.
	overrides map[uint64]int32

	// Recent-window accounting drives migration decisions.
	window    *metrics.Load
	keyCounts map[uint64]int64 // per-key counts within the window
	keyOwner  map[uint64]int32 // worker that served the key this window
	seen      int64

	// Cumulative migration costs.
	migrations    int64
	migratedState int64 // total per-key state moved (message counts as proxy)
}

// New returns a rebalancing partitioner.
func New(cfg Config) (*Partitioner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Partitioner{
		cfg:       cfg,
		seed:      hash.Fmix64(cfg.Seed + 0x2545f4914f6cdd1d),
		overrides: make(map[uint64]int32),
		window:    metrics.NewLoad(cfg.Workers),
		keyCounts: make(map[uint64]int64),
		keyOwner:  make(map[uint64]int32),
	}, nil
}

// Route implements route.Router: hash unless migrated, with a
// rebalancing pass every CheckEvery messages.
func (p *Partitioner) Route(key uint64) int {
	var w int
	if o, ok := p.overrides[key]; ok {
		w = int(o)
	} else {
		w = int(hash.Mix64(key, p.seed) % uint64(p.cfg.Workers))
	}
	p.window.Add(w)
	p.keyCounts[key]++
	p.keyOwner[key] = int32(w)
	p.seen++
	if p.seen%p.cfg.CheckEvery == 0 {
		p.rebalanceOnce()
	}
	return w
}

// rebalanceOnce migrates the hottest keys of the most loaded worker to
// the least loaded one until the window imbalance is under threshold or
// the per-check budget runs out, then starts a fresh window.
func (p *Partitioner) rebalanceOnce() {
	defer p.resetWindow()
	avg := p.window.Avg()
	if avg == 0 {
		return
	}
	for m := 0; m < p.cfg.MaxMigrationsPerCheck; m++ {
		hot := argmaxLoad(p.window)
		cold := p.window.ArgMin()
		hotLoad := float64(p.window.Get(hot))
		if hotLoad <= (1+p.cfg.Threshold)*avg || hot == cold {
			return
		}
		// Hottest key currently owned by the hot worker whose move does
		// not overshoot the cold worker past the hot one.
		var bestKey uint64
		var bestCount int64 = -1
		budget := int64((hotLoad - float64(p.window.Get(cold))))
		for k, c := range p.keyCounts {
			if p.keyOwner[k] != int32(hot) {
				continue
			}
			if c > bestCount && c <= budget {
				bestKey, bestCount = k, c
			}
		}
		if bestCount <= 0 {
			return // nothing movable without making things worse
		}
		p.overrides[bestKey] = int32(cold)
		p.keyOwner[bestKey] = int32(cold)
		p.window.AddN(hot, -bestCount)
		p.window.AddN(cold, bestCount)
		p.migrations++
		p.migratedState += bestCount
	}
}

func (p *Partitioner) resetWindow() {
	p.window.Reset()
	p.keyCounts = make(map[uint64]int64)
	p.keyOwner = make(map[uint64]int32)
}

func argmaxLoad(l *metrics.Load) int {
	best := 0
	for i := 1; i < l.N(); i++ {
		if l.Get(i) > l.Get(best) {
			best = i
		}
	}
	return best
}

// Workers implements route.Router.
func (p *Partitioner) Workers() int { return p.cfg.Workers }

// Name implements route.Router.
func (p *Partitioner) Name() string { return "Rebalance" }

// Migrations returns the number of key migrations performed.
func (p *Partitioner) Migrations() int64 { return p.migrations }

// MigratedState returns the total key state moved (window message counts
// as a proxy for the state size that a real system would transfer).
func (p *Partitioner) MigratedState() int64 { return p.migratedState }

// RoutingTableSize returns the number of override entries — the per-key
// routing state every source would have to agree on (the coordination
// cost PKG avoids entirely).
func (p *Partitioner) RoutingTableSize() int { return len(p.overrides) }

package rebalance

import (
	"testing"

	"pkgstream/internal/metrics"
	"pkgstream/internal/rng"
	"pkgstream/internal/route"
)

var _ route.Router = (*Partitioner)(nil)

func zipfGen(seed uint64, p1 float64, k uint64) func() uint64 {
	z := rng.NewZipf(rng.New(seed), rng.SolveZipfExponent(k, p1), k)
	return z.Next
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0},
		{Workers: 2, CheckEvery: -1},
		{Workers: 2, Threshold: -1},
		{Workers: 2, MaxMigrationsPerCheck: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	p, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.CheckEvery != 10_000 || p.cfg.Threshold != 0.1 || p.cfg.MaxMigrationsPerCheck != 8 {
		t.Fatalf("defaults not applied: %+v", p.cfg)
	}
	if p.Workers() != 4 || p.Name() != "Rebalance" {
		t.Fatal("metadata wrong")
	}
}

func TestRoutesInRangeAndAtomic(t *testing.T) {
	// Key atomicity at any instant: a key maps to exactly one worker
	// between checks (it may move across checks).
	p, _ := New(Config{Workers: 8, Seed: 1, CheckEvery: 5000})
	gen := zipfGen(1, 0.05, 2000)
	prevCheck := int64(0)
	current := map[uint64]int{}
	for i := 0; i < 50_000; i++ {
		k := gen()
		w := p.Route(k)
		if w < 0 || w >= 8 {
			t.Fatalf("worker %d out of range", w)
		}
		if p.seen/p.cfg.CheckEvery != prevCheck {
			prevCheck = p.seen / p.cfg.CheckEvery
			current = map[uint64]int{}
		}
		if prev, ok := current[k]; ok && prev != w {
			t.Fatalf("key %d moved mid-window: %d → %d", k, prev, w)
		}
		current[k] = w
	}
}

func TestRebalancingImprovesOnPlainHashing(t *testing.T) {
	const w, n = 5, 400_000
	// p1 = 0.09 < 1/W = 0.2: rebalancing *can* fix this skew.
	truth := metrics.NewLoad(w)
	p, _ := New(Config{Workers: w, Seed: 7, CheckEvery: 10_000})
	gen := zipfGen(3, 0.09, 20_000)
	for i := 0; i < n; i++ {
		truth.Add(p.Route(gen()))
	}

	hTruth := metrics.NewLoad(w)
	h := route.NewKeyGrouping(w, 7)
	gen = zipfGen(3, 0.09, 20_000)
	for i := 0; i < n; i++ {
		hTruth.Add(h.Route(gen()))
	}

	if truth.Imbalance()*2 > hTruth.Imbalance() {
		t.Fatalf("rebalancing %v not clearly below hashing %v",
			truth.Imbalance(), hTruth.Imbalance())
	}
	if p.Migrations() == 0 {
		t.Fatal("no migrations happened on a skewed stream")
	}
}

func TestRebalancingPaysCostsPKGAvoids(t *testing.T) {
	// The paper's §II.B argument quantified: to approach PKG's balance,
	// rebalancing needs migrations, migrated state, and a routing table.
	const w, n = 5, 300_000
	p, _ := New(Config{Workers: w, Seed: 9, CheckEvery: 5_000})
	truth := metrics.NewLoad(w)
	gen := zipfGen(5, 0.09, 10_000)
	for i := 0; i < n; i++ {
		truth.Add(p.Route(gen()))
	}

	pkgTruth := metrics.NewLoad(w)
	pkg := route.NewPKG(w, 2, 9, pkgTruth)
	gen = zipfGen(5, 0.09, 10_000)
	for i := 0; i < n; i++ {
		pkgTruth.Add(pkg.Route(gen()))
	}

	if p.RoutingTableSize() == 0 || p.MigratedState() == 0 {
		t.Fatal("rebalancing reported zero coordination cost")
	}
	// And despite those costs, PKG's balance is at least as good.
	if pkgTruth.Imbalance() > truth.Imbalance() {
		t.Fatalf("PKG %v should not be worse than rebalancing %v (which pays %d migrations)",
			pkgTruth.Imbalance(), truth.Imbalance(), p.Migrations())
	}
}

func TestAtomicityFloorWhenKeyExceedsShare(t *testing.T) {
	// With p1 > 1/W no atomic placement can balance: the hot key's
	// worker carries ≥ p1 > avg. Rebalancing must hit that floor while
	// PKG (splitting the key over 2 workers) goes below it.
	const w, n = 5, 200_000
	const p1 = 0.35 // > 1/W = 0.2
	p, _ := New(Config{Workers: w, Seed: 11, CheckEvery: 5_000})
	truth := metrics.NewLoad(w)
	gen := zipfGen(7, p1, 5_000)
	for i := 0; i < n; i++ {
		truth.Add(p.Route(gen()))
	}
	floor := (p1 - 1.0/w) * n * 0.8 // allow some slack
	if truth.Imbalance() < floor {
		t.Fatalf("atomic rebalancing imbalance %v below the p1 floor %v — impossible",
			truth.Imbalance(), floor)
	}

	pkgTruth := metrics.NewLoad(w)
	pkg := route.NewPKG(w, 2, 11, pkgTruth)
	gen = zipfGen(7, p1, 5_000)
	for i := 0; i < n; i++ {
		pkgTruth.Add(pkg.Route(gen()))
	}
	if pkgTruth.Imbalance() >= truth.Imbalance()/2 {
		t.Fatalf("key splitting %v should beat the atomicity floor %v",
			pkgTruth.Imbalance(), truth.Imbalance())
	}
}

func TestMigrationBudgetRespected(t *testing.T) {
	p, _ := New(Config{Workers: 4, Seed: 13, CheckEvery: 1_000, MaxMigrationsPerCheck: 2})
	gen := zipfGen(9, 0.2, 500)
	for i := 0; i < 50_000; i++ {
		p.Route(gen())
	}
	checks := int64(50_000 / 1_000)
	if p.Migrations() > checks*2 {
		t.Fatalf("%d migrations exceed budget %d", p.Migrations(), checks*2)
	}
}

func TestUniformStreamNeedsNoMigration(t *testing.T) {
	p, _ := New(Config{Workers: 4, Seed: 15, CheckEvery: 10_000, Threshold: 0.2})
	gen := zipfGen(11, 1.0/4000*1.001, 4_000) // uniform
	for i := 0; i < 100_000; i++ {
		p.Route(gen())
	}
	// Hashing a uniform stream is already balanced within the threshold.
	if p.Migrations() > 5 {
		t.Fatalf("uniform stream triggered %d migrations", p.Migrations())
	}
}

func BenchmarkRebalanceRoute(b *testing.B) {
	p, _ := New(Config{Workers: 10, Seed: 1})
	gen := zipfGen(1, 0.09, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Route(gen())
	}
}

package cluster

import (
	"testing"

	"pkgstream/internal/dataset"
	"pkgstream/internal/rng"
)

// TestHotChoicesRelieveTheHotWorker runs the queueing model on an
// extreme-skew stream: under KG (and, less so, PKG-2) the worker
// holding the head key is the bottleneck; the frequency-aware methods
// must cut the hottest worker's share and with it recover throughput.
func TestHotChoicesRelieveTheHotWorker(t *testing.T) {
	spec := dataset.Spec{
		Name: "Zipf", Symbol: "Z2", Messages: 300_000, Keys: 50_000,
		P1: rng.ZipfP1(50_000, 2.0), Kind: dataset.Zipf, DurationHours: 1,
	}
	run := func(m Method) Result {
		p := Defaults(m)
		p.Spec = spec
		p.Workers = 20
		p.CPUDelay = 0.001
		p.Duration = 15
		p.AggPeriod = 5
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pkg := run(PKG)
	dc := run(DChoices)
	wc := run(WChoices)

	// p1 ≈ 0.6: PKG-2 leaves ≥ 30% on one worker; the hot-key methods
	// must spread it far thinner.
	if pkg.HotShare < 0.25 {
		t.Fatalf("PKG hot share %v unexpectedly low — test premise broken", pkg.HotShare)
	}
	if dc.HotShare >= pkg.HotShare/2 {
		t.Errorf("D-Choices hot share %v not well below PKG's %v", dc.HotShare, pkg.HotShare)
	}
	if wc.HotShare >= pkg.HotShare/2 {
		t.Errorf("W-Choices hot share %v not well below PKG's %v", wc.HotShare, pkg.HotShare)
	}
	// The relieved bottleneck buys throughput at this service time (the
	// hot PKG worker saturates at 1/(0.3·1ms) ≈ 3.3k tuples/s).
	if dc.Throughput <= pkg.Throughput {
		t.Errorf("D-Choices throughput %v not above PKG's %v", dc.Throughput, pkg.Throughput)
	}
	if wc.Throughput <= pkg.Throughput {
		t.Errorf("W-Choices throughput %v not above PKG's %v", wc.Throughput, pkg.Throughput)
	}
	// Flushing still runs for the hot-key methods (they are not KG).
	if dc.AvgCounters <= 0 || wc.AvgCounters <= 0 {
		t.Errorf("flushing inactive: dc=%v wc=%v live counters", dc.AvgCounters, wc.AvgCounters)
	}
}

// TestHotChoicesDeterministic pins the discrete-event model: same
// params, same result.
func TestHotChoicesDeterministic(t *testing.T) {
	p := Defaults(DChoices)
	p.Spec = p.Spec.WithCap(200_000)
	p.Duration = 10
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-params runs differ:\n%+v\n%+v", a, b)
	}
}

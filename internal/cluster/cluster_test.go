package cluster

import (
	"math"
	"testing"

	"pkgstream/internal/dataset"
)

// quick returns Defaults scaled down for fast unit tests.
func quick(m Method) Params {
	p := Defaults(m)
	p.Spec = dataset.WP.WithCap(300_000)
	p.Duration = 8
	p.Warmup = 2
	return p
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Workers = 0 },
		func(p *Params) { p.SourceRate = 0 },
		func(p *Params) { p.CPUDelay = -1 },
		func(p *Params) { p.Window = 0 },
		func(p *Params) { p.Duration = p.Warmup },
		func(p *Params) { p.AggPeriod = -1 },
		func(p *Params) { p.FlushCostPerCounter = -1 },
		func(p *Params) { p.Spec = dataset.Spec{} },
	}
	for i, mutate := range bad {
		p := quick(PKG)
		mutate(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quick(PKG))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick(PKG))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-params runs differ:\n%+v\n%+v", a, b)
	}
}

func TestSingleWorkerSaturationMath(t *testing.T) {
	// One worker, service 1ms, fast source: throughput must be ≈1000/s
	// (M/D/1 at saturation = deterministic service rate).
	p := quick(SG)
	p.Workers = 1
	p.CPUDelay = 0.001
	p.SourceRate = 100000
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-1000) > 20 {
		t.Fatalf("single-worker throughput = %v, want ≈1000", r.Throughput)
	}
	// Closed loop: in-flight ≈ window, so by Little's law latency ≈
	// window/throughput.
	wantLat := float64(p.Window) / r.Throughput
	if math.Abs(r.AvgLatency-wantLat)/wantLat > 0.1 {
		t.Fatalf("latency %v, want ≈%v (Little's law)", r.AvgLatency, wantLat)
	}
}

func TestSourceLimitedRegime(t *testing.T) {
	// At a tiny CPU delay every method is source-limited and equal.
	for _, m := range []Method{KG, PKG, SG} {
		p := quick(m)
		p.CPUDelay = 0.00005
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Throughput-p.SourceRate)/p.SourceRate > 0.02 {
			t.Errorf("%v: throughput %v, want ≈ source rate %v", m, r.Throughput, p.SourceRate)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	// The paper's Figure 5(a) shape: (i) KG saturates at ≈0.4 ms; (ii) at
	// 1 ms KG has lost much more throughput than PKG/SG; (iii) PKG ≈ SG
	// throughout; (iv) KG's latency is clearly worse when loaded.
	run := func(m Method, delay float64) Result {
		p := quick(m)
		p.CPUDelay = delay
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	kg04, pkg04 := run(KG, 0.0004), run(PKG, 0.0004)
	if kg04.Throughput >= 0.99*quick(KG).SourceRate {
		t.Errorf("KG not saturated at 0.4ms: %v", kg04.Throughput)
	}
	if pkg04.Throughput < 0.99*quick(PKG).SourceRate {
		t.Errorf("PKG saturated too early at 0.4ms: %v", pkg04.Throughput)
	}
	if kg04.AvgLatency < 1.4*pkg04.AvgLatency {
		t.Errorf("KG latency %v not ≥45%% above PKG %v at 0.4ms",
			kg04.AvgLatency, pkg04.AvgLatency)
	}

	kg1, pkg1, sg1 := run(KG, 0.001), run(PKG, 0.001), run(SG, 0.001)
	base := quick(KG).SourceRate
	kgDrop := 1 - kg1.Throughput/base
	pkgDrop := 1 - pkg1.Throughput/base
	if kgDrop < 0.5 || kgDrop > 0.75 {
		t.Errorf("KG decline at 1ms = %v, want ≈0.6", kgDrop)
	}
	if pkgDrop < 0.25 || pkgDrop > 0.5 {
		t.Errorf("PKG decline at 1ms = %v, want ≈0.37", pkgDrop)
	}
	if math.Abs(pkg1.Throughput-sg1.Throughput)/sg1.Throughput > 0.05 {
		t.Errorf("PKG %v and SG %v should track each other", pkg1.Throughput, sg1.Throughput)
	}
}

func TestHotShare(t *testing.T) {
	// Under KG the hottest worker carries ≈ p1 + (1-p1)/W ≈ 0.19 of the
	// WP stream; PKG splits it: ≈ 1/W each.
	kg, err := Run(quick(KG))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Run(quick(PKG))
	if err != nil {
		t.Fatal(err)
	}
	if kg.HotShare < 0.15 {
		t.Errorf("KG hot share %v suspiciously balanced", kg.HotShare)
	}
	if pkg.HotShare > 0.14 {
		t.Errorf("PKG hot share %v not balanced", pkg.HotShare)
	}
}

func TestAggregationThroughputMemoryTradeoff(t *testing.T) {
	// Figure 5(b): longer aggregation periods raise both throughput and
	// memory; PKG dominates SG on both axes at equal T.
	run := func(m Method, T float64) Result {
		p := quick(m)
		p.AggPeriod = T
		p.Duration = p.Warmup + 4*T
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pkg10, pkg30 := run(PKG, 3), run(PKG, 9)
	if !(pkg30.Throughput > pkg10.Throughput) {
		t.Errorf("longer period should raise throughput: %v vs %v",
			pkg30.Throughput, pkg10.Throughput)
	}
	if !(pkg30.AvgCounters > pkg10.AvgCounters) {
		t.Errorf("longer period should raise memory: %v vs %v",
			pkg30.AvgCounters, pkg10.AvgCounters)
	}
	sg10 := run(SG, 3)
	if !(pkg10.Throughput > sg10.Throughput) {
		t.Errorf("PKG throughput %v should beat SG %v at equal T",
			pkg10.Throughput, sg10.Throughput)
	}
	if !(pkg10.AvgCounters < sg10.AvgCounters) {
		t.Errorf("PKG memory %v should be below SG %v at equal T",
			pkg10.AvgCounters, sg10.AvgCounters)
	}
}

func TestKGIgnoresAggregation(t *testing.T) {
	// KG keeps running counters: no flushing, memory grows to the
	// distinct-key count, and AggPeriod has no effect on throughput.
	base, err := Run(quick(KG))
	if err != nil {
		t.Fatal(err)
	}
	p := quick(KG)
	p.AggPeriod = 2
	agg, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Throughput != agg.Throughput {
		t.Errorf("AggPeriod changed KG throughput: %v vs %v", base.Throughput, agg.Throughput)
	}
	if agg.FinalCounters == 0 || agg.AggUtilization != 0 {
		t.Errorf("KG should keep counters (%d) and never use the aggregator (%v)",
			agg.FinalCounters, agg.AggUtilization)
	}
}

func TestFlushedMemoryBounded(t *testing.T) {
	// With flushing, PKG live counters stay well below the cumulative
	// distinct-pair count a no-flush run accumulates.
	p := quick(PKG)
	p.AggPeriod = 1
	flushed, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	unflushed, err := Run(quick(PKG))
	if err != nil {
		t.Fatal(err)
	}
	if flushed.AvgCounters >= unflushed.AvgCounters {
		t.Errorf("flushing did not reduce memory: %v vs %v",
			flushed.AvgCounters, unflushed.AvgCounters)
	}
	if flushed.AggUtilization <= 0 || flushed.AggUtilization >= 1 {
		t.Errorf("aggregator utilization %v out of (0,1)", flushed.AggUtilization)
	}
}

func TestLatencyPercentileOrdering(t *testing.T) {
	r, err := Run(quick(KG))
	if err != nil {
		t.Fatal(err)
	}
	if r.P99Latency < r.AvgLatency {
		t.Errorf("P99 %v below mean %v", r.P99Latency, r.AvgLatency)
	}
	if r.AvgLatency < 0.0004 {
		t.Errorf("mean latency %v below a single service time", r.AvgLatency)
	}
}

func TestCompletedCountsConsistent(t *testing.T) {
	r, err := Run(quick(SG))
	if err != nil {
		t.Fatal(err)
	}
	p := quick(SG)
	window := p.Duration - p.Warmup
	if got := r.Throughput * window; math.Abs(got-float64(r.Completed)) > 1 {
		t.Errorf("throughput × window = %v inconsistent with completed %d", got, r.Completed)
	}
	// Can't exceed what the source could possibly emit.
	if float64(r.Completed) > p.SourceRate*window*1.01 {
		t.Errorf("completed %d exceeds source capacity", r.Completed)
	}
}

func BenchmarkClusterSimulation(b *testing.B) {
	p := quick(PKG)
	p.Duration = 4
	p.Warmup = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

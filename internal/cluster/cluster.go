// Package cluster is a discrete-event simulation of the paper's real
// Storm deployment (§V Q4, Figure 5): one source PEI routes a skewed key
// stream to W counter PEIs, each modeled as a FIFO server whose service
// time is the experiment's injected CPU delay, plus a downstream
// aggregator that merges periodically flushed partial counters.
//
// The paper's own experiment is already a controlled queueing study — it
// injects an artificial per-tuple CPU delay and measures the saturation
// throughput, latency, and counter memory of KG vs PKG vs SG. This
// simulator reproduces exactly that bottleneck structure:
//
//   - the source is a server with bounded emit rate and a bounded
//     in-flight window (Storm's max.spout.pending), so the system is a
//     closed loop that saturates rather than diverges;
//   - each worker serves tuples in FIFO order at the configured CPU
//     delay; under KG the worker holding the hot keys becomes the
//     bottleneck, which is what caps KG throughput;
//   - with an aggregation period T, workers periodically flush their
//     live counters (costing flush time per counter) to the aggregator;
//     shorter periods cost throughput, longer periods cost memory —
//     the trade-off of Figure 5(b).
//
// Absolute numbers depend on the chosen rates (the authors' hardware is
// not reproducible); the *shape* — who wins, the ≈0.4 ms KG saturation
// point, KG's steeper throughput decline, PKG's memory advantage over SG
// — is what the defaults are calibrated to preserve.
package cluster

import (
	"container/heap"
	"fmt"

	"pkgstream/internal/dataset"
	"pkgstream/internal/hash"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Method selects the partitioning strategy at the source. It is the
// shared strategy type of the routing core — cluster no longer keeps its
// own enumeration.
type Method = route.Strategy

// The three strategies compared in Figure 5. The numeric values follow
// the shared Strategy ordering (KG=0, SG=1, PKG=2), which differs from
// this package's historical one (PKG was 1, SG was 2): always use the
// named constants, never raw integers.
const (
	// KG is key grouping: hash once; counters are running totals that
	// are never flushed (the periodic top-k report is negligible).
	KG = route.StrategyKG
	// PKG is partial key grouping with the source's local load estimate.
	PKG = route.StrategyPKG
	// SG is shuffle grouping.
	SG = route.StrategySG
	// DChoices is frequency-aware PKG (ICDE 2016 follow-up): the source
	// classifies keys with its own sketch and widens hot keys to d > 2
	// candidates. Flushing behaves as under PKG.
	DChoices = route.StrategyDChoices
	// WChoices spreads keys above the hot threshold round-robin over
	// all workers.
	WChoices = route.StrategyWChoices
)

// Params configures one simulated deployment.
type Params struct {
	// Method is the partitioning strategy.
	Method Method
	// Workers is the number of counter PEIs (the paper uses 9).
	Workers int
	// CPUDelay is the injected per-tuple service time at a worker, in
	// seconds (the paper sweeps 0.1ms to 1ms).
	CPUDelay float64
	// SourceRate is the maximum tuples/second the source can emit
	// (models spout + serialization + transport capacity).
	SourceRate float64
	// Window is the maximum number of in-flight tuples (Storm's
	// max.spout.pending); the closed loop saturates against it.
	Window int
	// Hot holds the hot-key knobs for the DChoices and WChoices methods
	// (zero value: adaptive defaults).
	Hot hotkey.Config
	// Spec provides the key distribution; the stream is replayed
	// endlessly for the duration of the simulation.
	Spec dataset.Spec
	// Seed drives key sampling and hash choice.
	Seed uint64
	// Duration is the simulated time in seconds.
	Duration float64
	// Warmup is excluded from all measurements.
	Warmup float64
	// AggPeriod is the aggregation period T in seconds; 0 disables
	// flushing (KG ignores it always).
	AggPeriod float64
	// FlushCostPerCounter is worker CPU seconds consumed per flushed
	// counter (serialization + emission of one partial count).
	FlushCostPerCounter float64
	// AggCostPerCounter is aggregator CPU seconds per received partial
	// counter (merge cost).
	AggCostPerCounter float64
}

// Defaults returns the calibrated baseline configuration for the Figure 5
// experiments: 9 workers fed from a WP-shaped stream at up to 15,000
// tuples/s with a 500-tuple spout window. With these values key grouping
// saturates at a CPU delay of ≈0.4 ms (its hottest worker carries ≈18-20%
// of the stream, so its capacity 1/(hot·delay) falls below the source
// rate there), matching the paper's observation that 0.4 ms is KG's
// saturation point; at 1 ms, KG has lost ≈60-65% of its throughput and
// PKG/SG ≈40%, the declines Figure 5(a) reports. The flush cost puts the
// Figure 5(b) PKG-vs-KG crossover near the paper's T ≈ 30 s.
func Defaults(m Method) Params {
	return Params{
		Method:              m,
		Workers:             9,
		CPUDelay:            0.0004,
		SourceRate:          15000,
		Window:              500,
		Spec:                dataset.WP.WithCap(2_000_000),
		Seed:                1,
		Duration:            30,
		Warmup:              5,
		FlushCostPerCounter: 0.0001,
		AggCostPerCounter:   0.00005,
	}
}

func (p Params) validate() error {
	if p.Workers <= 0 {
		return fmt.Errorf("cluster: Workers must be positive")
	}
	if p.CPUDelay < 0 || p.SourceRate <= 0 {
		return fmt.Errorf("cluster: need non-negative CPUDelay and positive SourceRate")
	}
	if p.Window <= 0 {
		return fmt.Errorf("cluster: Window must be positive")
	}
	if p.Duration <= p.Warmup {
		return fmt.Errorf("cluster: Duration must exceed Warmup")
	}
	if p.AggPeriod < 0 || p.FlushCostPerCounter < 0 || p.AggCostPerCounter < 0 {
		return fmt.Errorf("cluster: negative aggregation cost")
	}
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	return nil
}

// Result reports the measurements of one simulated deployment.
type Result struct {
	// Throughput is completed tuples/second in the measurement window —
	// the y axis of Figure 5.
	Throughput float64
	// AvgLatency and P99Latency are end-to-end sojourn times in seconds
	// (emission to completion at a worker).
	AvgLatency, P99Latency float64
	// AvgCounters is the time-averaged number of live partial counters
	// across all workers — the x axis of Figure 5(b).
	AvgCounters float64
	// FinalCounters is the count at the end of the run (for KG, whose
	// running counters never shrink, this is its memory footprint).
	FinalCounters int64
	// HotShare is the largest fraction of tuples handled by one worker.
	HotShare float64
	// AggUtilization is the aggregator's busy fraction during the
	// measurement window.
	AggUtilization float64
	// Completed is the number of tuples finished in the window.
	Completed int64
}

// event kinds.
const (
	evSourceEmit = iota
	evWorkerDone
	evFlush
	evAggDone
)

type event struct {
	at   float64
	seq  int64
	kind int8
	who  int32
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekEmpty() bool { return len(h) == 0 }

// job is a unit of worker service: a data tuple or a counter flush.
type job struct {
	emitAt  float64
	key     uint64
	service float64
	flush   bool
	ncnt    int // counters carried by a flush job
}

type worker struct {
	queue    []job
	busy     bool
	counters map[uint64]struct{}
	handled  int64
}

// endless replays a dataset stream forever, reseeding at each wrap.
type endless struct {
	spec dataset.Spec
	seed uint64
	s    dataset.Stream
}

func newEndless(spec dataset.Spec, seed uint64) *endless {
	return &endless{spec: spec, seed: seed, s: spec.Open(seed)}
}

func (e *endless) next() uint64 {
	m, ok := e.s.Next()
	if !ok {
		e.seed++
		e.s = e.spec.Open(e.seed)
		m, _ = e.s.Next()
	}
	return m.Key
}

// Run executes the simulation and returns its measurements. It is a
// deterministic function of Params.
func Run(p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}

	// Source-side router with local load estimation.
	view := metrics.NewLoad(p.Workers)
	hashSeed := hash.Fmix64(p.Seed + 0x9e3779b97f4a7c15)
	var part route.Router
	switch p.Method {
	case KG:
		part = route.NewKeyGrouping(p.Workers, hashSeed)
	case PKG:
		part = route.NewPKG(p.Workers, 2, hashSeed, view)
	case SG:
		part = route.NewShuffleGrouping(p.Workers, 0)
	case DChoices, WChoices:
		r, err := route.New(route.Config{
			Strategy: p.Method, Workers: p.Workers, Seed: hashSeed,
			View: view, Hot: p.Hot,
		})
		if err != nil {
			return Result{}, err
		}
		part = r
	default:
		return Result{}, fmt.Errorf("cluster: unknown method %v", p.Method)
	}

	keys := newEndless(p.Spec, p.Seed)
	workers := make([]worker, p.Workers)
	for i := range workers {
		workers[i].counters = make(map[uint64]struct{})
	}

	var (
		events   eventHeap
		seq      int64
		inflight int
		blocked  bool
		srcFree  float64
		interval = 1 / p.SourceRate

		// lat is the end-to-end sojourn histogram. Observations are in
		// nanoseconds of simulated time (the histogram is integer
		// log-bucketed), reported back in seconds; quantiles are exact to
		// one bucket width (~3.1%) with no reservoir sampling error.
		lat       metrics.Histogram
		completed int64

		// Counter-memory integral over the measurement window.
		totalCounters int64
		memArea       float64
		memLast       = p.Warmup

		// Aggregator.
		aggQueue []int
		aggBusy  bool
		aggWork  float64

		totalTuples int64
	)

	push := func(at float64, kind int8, who int32) {
		seq++
		heap.Push(&events, event{at: at, seq: seq, kind: kind, who: who})
	}
	accountMem := func(now float64) {
		if now > p.Warmup {
			from := memLast
			if from < p.Warmup {
				from = p.Warmup
			}
			if now > from {
				memArea += float64(totalCounters) * (now - from)
			}
		}
		memLast = now
	}
	startNext := func(i int32, now float64) {
		w := &workers[i]
		if w.busy || len(w.queue) == 0 {
			return
		}
		w.busy = true
		push(now+w.queue[0].service, evWorkerDone, i)
	}

	heap.Init(&events)
	push(0, evSourceEmit, 0)
	flushing := p.AggPeriod > 0 && p.Method != KG
	if flushing {
		for i := 0; i < p.Workers; i++ {
			push(p.AggPeriod, evFlush, int32(i))
		}
	}

	for !events.peekEmpty() {
		e := heap.Pop(&events).(event)
		if e.at > p.Duration {
			break
		}
		now := e.at
		switch e.kind {
		case evSourceEmit:
			if inflight >= p.Window {
				blocked = true
				continue
			}
			key := keys.next()
			dst := part.Route(key)
			view.Add(dst) // local estimate: the source charges its choice
			w := &workers[dst]
			w.queue = append(w.queue, job{emitAt: now, key: key, service: p.CPUDelay})
			inflight++
			startNext(int32(dst), now)
			srcFree = now + interval
			push(srcFree, evSourceEmit, 0)

		case evWorkerDone:
			w := &workers[e.who]
			j := w.queue[0]
			w.queue = w.queue[1:]
			w.busy = false
			if j.flush {
				// Hand the batch to the aggregator.
				if j.ncnt > 0 {
					aggQueue = append(aggQueue, j.ncnt)
					if !aggBusy {
						aggBusy = true
						push(now+float64(aggQueue[0])*p.AggCostPerCounter, evAggDone, 0)
					}
				}
			} else {
				w.handled++
				totalTuples++
				if _, seen := w.counters[j.key]; !seen {
					accountMem(now)
					w.counters[j.key] = struct{}{}
					totalCounters++
				}
				inflight--
				if now > p.Warmup {
					completed++
					lat.Observe(int64((now - j.emitAt) * 1e9))
				}
				if blocked && inflight < p.Window {
					blocked = false
					at := srcFree
					if at < now {
						at = now
					}
					push(at, evSourceEmit, 0)
				}
			}
			startNext(e.who, now)

		case evFlush:
			w := &workers[e.who]
			n := len(w.counters)
			if n > 0 {
				accountMem(now)
				totalCounters -= int64(n)
				w.counters = make(map[uint64]struct{})
				w.queue = append(w.queue, job{
					service: float64(n) * p.FlushCostPerCounter,
					flush:   true,
					ncnt:    n,
				})
				startNext(e.who, now)
			}
			push(now+p.AggPeriod, evFlush, e.who)

		case evAggDone:
			n := aggQueue[0]
			aggQueue = aggQueue[1:]
			if now > p.Warmup {
				aggWork += float64(n) * p.AggCostPerCounter
			}
			if len(aggQueue) > 0 {
				push(now+float64(aggQueue[0])*p.AggCostPerCounter, evAggDone, 0)
			} else {
				aggBusy = false
			}
		}
	}

	accountMem(p.Duration)
	window := p.Duration - p.Warmup

	latSnap := lat.Snapshot()
	res := Result{
		Throughput:     float64(completed) / window,
		AvgLatency:     latSnap.Mean() / 1e9,
		P99Latency:     float64(latSnap.Quantile(0.99)) / 1e9,
		AvgCounters:    memArea / window,
		FinalCounters:  totalCounters,
		AggUtilization: aggWork / window,
		Completed:      completed,
	}
	var maxHandled int64
	for i := range workers {
		if workers[i].handled > maxHandled {
			maxHandled = workers[i].handled
		}
	}
	if totalTuples > 0 {
		res.HotShare = float64(maxHandled) / float64(totalTuples)
	}
	return res, nil
}

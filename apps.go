package pkgstream

import (
	"pkgstream/internal/cluster"
	"pkgstream/internal/heavyhitters"
	"pkgstream/internal/wordcount"
)

// Application and cluster-experiment surface.

// Cluster simulation (Figure 5 methodology).

// ClusterParams configures a simulated Storm-like deployment.
type ClusterParams = cluster.Params

// ClusterResult reports throughput, latency and memory.
type ClusterResult = cluster.Result

// ClusterMethod selects the partitioning strategy at the source.
type ClusterMethod = cluster.Method

// Cluster partitioning strategies.
const (
	// ClusterKG is key grouping with running counters.
	ClusterKG = cluster.KG
	// ClusterPKG is partial key grouping with local load estimation.
	ClusterPKG = cluster.PKG
	// ClusterSG is shuffle grouping.
	ClusterSG = cluster.SG
)

// ClusterDefaults returns the calibrated Figure 5 configuration.
func ClusterDefaults(m ClusterMethod) ClusterParams { return cluster.Defaults(m) }

// RunCluster executes the discrete-event cluster simulation.
func RunCluster(p ClusterParams) (ClusterResult, error) { return cluster.Run(p) }

// Heavy hitters (§VI.C).

// SpaceSaving is the Metwally et al. top-k sketch with O(1) updates.
type SpaceSaving = heavyhitters.SpaceSaving

// Counted is an item with estimated count and error bound.
type Counted = heavyhitters.Counted

// HeavyHitters is the distributed top-k tracker: one SpaceSaving summary
// per worker, items routed by the chosen strategy; PKG queries probe
// exactly two workers per item.
type HeavyHitters = heavyhitters.Distributed

// HHStrategy selects the heavy hitters routing strategy.
type HHStrategy = heavyhitters.Strategy

// Heavy-hitter routing strategies.
const (
	// HHByPKG tracks each item on at most two workers.
	HHByPKG = heavyhitters.ByPKG
	// HHByKey tracks each item on exactly one worker.
	HHByKey = heavyhitters.ByKey
	// HHByShuffle spreads items over all workers.
	HHByShuffle = heavyhitters.ByShuffle
)

// NewSpaceSaving returns a SpaceSaving summary of capacity k.
func NewSpaceSaving(k int) *SpaceSaving { return heavyhitters.New(k) }

// MergeSummaries merges SpaceSaving summaries into capacity k
// (Berinde-style error accounting).
func MergeSummaries(k int, summaries ...*SpaceSaving) *SpaceSaving {
	return heavyhitters.Merge(k, summaries...)
}

// NewHeavyHitters returns a distributed top-k tracker over w workers with
// per-worker capacity k.
func NewHeavyHitters(w, k int, strategy HHStrategy, seed uint64) *HeavyHitters {
	return heavyhitters.NewDistributed(w, k, strategy, seed)
}

// TopKAggregator is the SpaceSaving-backed WindowAggregator behind the
// distributed top-k: per-instance partial summaries, merged downstream
// with Berinde-style error accounting.
type TopKAggregator = heavyhitters.TopKAgg

// HHTopologyConfig parameterizes the distributed top-k topology on the
// live engine.
type HHTopologyConfig = heavyhitters.TopologyConfig

// HHTopologyOutput collects the merged top-K of a topology run.
type HHTopologyOutput = heavyhitters.TopologyOutput

// BuildHeavyHittersTopology assembles the §VI.C distributed top-k as an
// engine topology: item spouts → windowed SpaceSaving partials → merged
// final stage → top-K sink.
func BuildHeavyHittersTopology(cfg HHTopologyConfig) (*Topology, *HHTopologyOutput, error) {
	return heavyhitters.BuildTopology(cfg)
}

// Word count (the paper's running example, §II.A).

// WordCount is a word with its count.
type WordCount = wordcount.WordCount

// WordCountConfig parameterizes a streaming top-k word count topology.
type WordCountConfig = wordcount.Config

// WordCountOutput collects a topology run's results.
type WordCountOutput = wordcount.Output

// Word count grouping choices.
const (
	// WordCountPKG runs the counters under partial key grouping.
	WordCountPKG = wordcount.UsePKG
	// WordCountKG runs the counters under key grouping.
	WordCountKG = wordcount.UseKG
	// WordCountSG runs the counters under shuffle grouping.
	WordCountSG = wordcount.UseSG
)

// BuildWordCount assembles the streaming top-k word count topology.
func BuildWordCount(cfg WordCountConfig) (*Topology, *WordCountOutput, error) {
	return wordcount.Build(cfg)
}

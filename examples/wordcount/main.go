// Streaming top-k word count — the paper's running example — executed on
// the built-in Storm-like engine under all three groupings, reproducing
// the §II trade-off: KG is skewed, SG is balanced but memory-hungry, PKG
// is balanced at bounded memory and aggregation cost.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"

	"pkgstream"
)

func run(cfg pkgstream.WordCountConfig) (*pkgstream.WordCountOutput, float64) {
	top, out, err := pkgstream.BuildWordCount(cfg)
	if err != nil {
		panic(err)
	}
	rt := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 1024})
	if err := rt.Run(); err != nil {
		panic(err)
	}
	loads := rt.Stats().Loads("counter.partial")
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	return out, float64(max) - float64(sum)/float64(len(loads))
}

func main() {
	base := pkgstream.WordCountConfig{
		Words: 150_000, Vocab: 30_000, P1: 0.0932, // WP-like skew
		Sources: 2, Workers: 9, FlushEvery: 10_000, K: 5, Seed: 42,
	}

	fmt.Println("streaming top-k word count: 300k words, 9 counters, WP-like skew")
	fmt.Printf("%-4s  %12s  %14s  %14s\n", "", "imbalance", "partials/word", "max counters")

	var pkgOut *pkgstream.WordCountOutput
	for _, cfg := range []pkgstream.WordCountConfig{
		{Grouping: pkgstream.WordCountKG},
		{Grouping: pkgstream.WordCountSG},
		{Grouping: pkgstream.WordCountPKG},
	} {
		grouping := cfg.Grouping
		cfg = base
		cfg.Grouping = grouping
		out, imb := run(cfg)
		fmt.Printf("%-4s  %12.1f  %14.2f  %14d\n",
			string(grouping), imb,
			float64(out.PartialsMerged)/float64(out.TotalWords),
			out.MaxCounterResidency)
		if grouping == pkgstream.WordCountPKG {
			pkgOut = out
		}
	}

	fmt.Println("\ntop words (identical under every grouping):")
	for i, wc := range pkgOut.Top {
		fmt.Printf("%2d. %-8s %6d\n", i+1, wc.Word, wc.Count)
	}
}

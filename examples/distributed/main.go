// PKG over a real network: workers listen on TCP loopback ports, two
// uncoordinated sources stream a skewed workload at them with partial
// key grouping on purely local load estimates, and point queries probe
// only each key's two candidate workers. Nothing but keys crosses the
// wire — no load gossip, no routing tables, no source-to-source
// coordination.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"sync"

	"pkgstream"
)

func main() {
	const workers = 5
	const seed = 42

	// Start the worker fleet.
	addrs := make([]string, workers)
	fleet := make([]*pkgstream.NetWorker, workers)
	for i := range fleet {
		w, err := pkgstream.ListenNetWorker("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		fleet[i] = w
		addrs[i] = w.Addr()
		defer w.Close()
	}
	fmt.Printf("started %d TCP workers\n", workers)

	// Two independent sources, each with its own local load estimate.
	spec := pkgstream.Wikipedia.WithCap(200_000)
	var wg sync.WaitGroup
	var queryCandidates func(key uint64) []int
	var mu sync.Mutex
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			src, err := pkgstream.DialNetSource(addrs, pkgstream.NetPKG, seed, id)
			if err != nil {
				panic(err)
			}
			defer src.Close()
			stream := spec.Open(uint64(id) + 1)
			for {
				m, ok := stream.Next()
				if !ok {
					break
				}
				if err := src.Send(m.Key); err != nil {
					panic(err)
				}
			}
			if err := src.Flush(); err != nil {
				panic(err)
			}
			mu.Lock()
			if queryCandidates == nil {
				queryCandidates = src.Candidates
			}
			mu.Unlock()
			fmt.Printf("source %d: sent %d keys, local estimate %v\n", id, src.Sent(), src.LocalLoads())
		}(s)
	}
	wg.Wait()

	// Wait for the workers to drain the sockets.
	var total int64 = 2 * spec.Messages
	for _, w := range fleet {
		_ = w.WaitProcessed(1, 0) // nudge; real wait below
	}
	for {
		var seen int64
		for _, w := range fleet {
			seen += w.Processed()
		}
		if seen >= total {
			break
		}
	}

	fmt.Println("\nworker loads (true, across both sources):")
	var max, sum int64
	for i, w := range fleet {
		p := w.Processed()
		fmt.Printf("  worker[%d] %s: %d messages, %d counters\n", i, w.Addr(), p, w.DistinctKeys())
		if p > max {
			max = p
		}
		sum += p
	}
	imb := float64(max) - float64(sum)/float64(workers)
	fmt.Printf("imbalance I = max-avg = %.0f (%.4f%% of %d messages)\n", imb, imb/float64(sum)*100, sum)

	fmt.Println("\n2-probe distributed queries (hot keys):")
	for _, key := range []uint64{1, 2, 3} {
		cands := queryCandidates(key)
		count, err := pkgstream.NetQuery(addrs, key, cands)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  key %d → %d (probed workers %v only)\n", key, count, cands)
	}
}

// A REAL multi-process windowed wordcount: this program re-executes
// itself as worker nodes (child processes) and cross-checks every
// deployment shape against a fully in-process run — the counts must be
// identical each time.
//
//  1. In-process: spout → PKG partials → final, one process.
//
//  2. Remote final: the engine half runs in the parent, shipping
//     flushed partials and watermarks to a final-stage child over the
//     internal/wire TCP protocol; results drain back with point
//     queries.
//
//  3. Fully distributed (the paper's §V shape): the parent keeps only
//     the spouts — raw tuples cross a credit-flow-controlled wire edge
//     to a PARTIAL-stage child, which accumulates windows and forwards
//     its partials to the final-stage child; closed windows arrive by
//     push subscription, no polling.
//
//     go run ./examples/distributed
//
// The same child roles are what cmd/pkgnode hosts as standalone
// daemons (-mode partial | final).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"pkgstream"
)

// diag builds the role's structured stderr logger — child stderr is
// passed through to the parent's, so every diagnostic line says which
// process it came from. The run narrative stays program output on
// stdout (the parent parses the children's "node: listening on" line).
func diag(role string) *slog.Logger {
	return slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(slog.String("role", role))
}

// fatal logs err through the role's logger and exits.
func fatal(role string, err error) {
	diag(role).Error("failed", "err", err)
	os.Exit(1)
}

const (
	sources   = 2
	partials  = 6
	perSource = 150_000
	winSize   = 30 * time.Second // event-time window over the logical clock
	flushT    = 4_000            // aggregation period T in tuples
	tick      = 200 * time.Microsecond
	seed      = 42
)

func spec() pkgstream.WindowSpec {
	return pkgstream.WindowSpec{Size: winSize, EveryTuples: flushT, Sources: sources}
}

// wordSpout emits a skewed word stream on a pre-stamped logical clock
// and advertises its progress with source marks, so the aggregation's
// watermark is exact with zero lateness tuning.
type wordSpout struct {
	i, id int
}

func (s *wordSpout) Open(ctx *pkgstream.Context) { s.id = ctx.Index }
func (s *wordSpout) Close()                      {}

func (s *wordSpout) Next(out pkgstream.Emitter) bool {
	if s.i >= perSource {
		return false
	}
	s.i++
	at := int64(time.Duration(s.i) * tick)
	word := "gopher"
	if r := (s.i*7919 + s.id*104729) % 100; r >= 25 {
		word = fmt.Sprintf("w%d", r*r*(s.i%71)%3000)
	}
	out.Emit(pkgstream.Tuple{Key: word, EmitNanos: at})
	if s.i%1000 == 0 {
		out.Emit(pkgstream.SourceMark(s.id, at))
	}
	if s.i == perSource {
		out.Emit(pkgstream.SourceMark(s.id, int64(1)<<62))
	}
	return s.i < perSource
}

// buildTopology declares the shared spout→partial half; opts selects
// where the final stage lives.
func buildTopology(opts ...pkgstream.WindowedOption) (*pkgstream.TopologyBuilder, *pkgstream.WindowPlan) {
	plan := pkgstream.MustWindowPlan(pkgstream.CountAggregator(), spec())
	b := pkgstream.NewTopologyBuilder("distributed", seed)
	b.AddSpout("words", func() pkgstream.Spout { return &wordSpout{} }, sources)
	b.WindowedAggregate("wc", plan, partials, opts...).
		Input("words", pkgstream.GroupSourceAware(pkgstream.GroupPartial()))
	return b, plan
}

// runFinalNode is a CHILD process: a TCP worker hosting the windowed
// final stage for `srcs` upstream mark sources. It prints its address
// for the parent and serves until the parent closes its stdin (after
// draining the results).
func runFinalNode(srcs int) {
	plan := pkgstream.MustWindowPlan(pkgstream.CountAggregator(), spec())
	host, err := pkgstream.NewWindowFinalHost(plan, srcs)
	if err != nil {
		fatal("final-child", err)
	}
	w, err := pkgstream.ListenNetHandler("127.0.0.1:0", host)
	if err != nil {
		fatal("final-child", err)
	}
	fmt.Printf("node: listening on %s\n", w.Addr())
	_, _ = bufio.NewReader(os.Stdin).ReadString('\n') // EOF when the parent is done
	_ = w.Close()
}

// runPartialNode is a CHILD process: a TCP worker hosting the windowed
// PARTIAL stage, forwarding its flushed state to the final node.
func runPartialNode(finalAddr string) {
	plan := pkgstream.MustWindowPlan(pkgstream.CountAggregator(), spec())
	host, err := pkgstream.NewWindowPartialHost(plan, pkgstream.WindowPartialHostOptions{
		ID: 0, Nodes: 1, FinalAddrs: []string{finalAddr}, Seed: seed,
	})
	if err != nil {
		fatal("partial-child", err)
	}
	w, err := pkgstream.ListenNetHandler("127.0.0.1:0", host)
	if err != nil {
		fatal("partial-child", err)
	}
	fmt.Printf("node: listening on %s\n", w.Addr())
	_, _ = bufio.NewReader(os.Stdin).ReadString('\n')
	_ = w.Close()
}

// spawnNode re-executes this binary with the given role flags and
// reads the child's listen address off its stdout.
func spawnNode(args ...string) (addr string, wait func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return "", nil, err
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return "", nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		return "", nil, fmt.Errorf("reading child address: %w", err)
	}
	addr = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "node: listening on "))
	return addr, func() {
		_ = in.Close() // stdin EOF tells the child to exit
		_ = cmd.Wait()
	}, nil
}

func key(word string, start int64) string { return fmt.Sprintf("%s@%d", word, start) }

func main() {
	node := flag.Bool("node", false, "run as a final-stage child process")
	srcs := flag.Int("sources", partials, "final child: upstream mark sources")
	partialNode := flag.String("partial-node", "", "run as a partial-stage child forwarding to this final address")
	flag.Parse()
	if *partialNode != "" {
		runPartialNode(*partialNode)
		return
	}
	if *node {
		runFinalNode(*srcs)
		return
	}

	// Reference run: everything in one process.
	var mu sync.Mutex
	local := map[string]int64{}
	b, _ := buildTopology()
	b.AddBolt("sink", func() pkgstream.Bolt {
		return pkgstream.BoltFunc(func(t pkgstream.Tuple, _ pkgstream.Emitter) {
			if t.Tick {
				return
			}
			res := t.Values[0].(pkgstream.WindowResult)
			mu.Lock()
			local[key(res.Key, res.Start)] += res.Value.(int64)
			mu.Unlock()
		})
	}, 1).Input("wc", pkgstream.GroupGlobal())
	top, err := b.Build()
	if err != nil {
		fatal("parent", err)
	}
	if err := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 2048}).Run(); err != nil {
		fatal("parent", err)
	}
	fmt.Printf("in-process run: %d (word, window) pairs\n", len(local))

	// Distributed run: the final stage lives in a child process.
	addr, wait, err := spawnNode("-node")
	if err != nil {
		fatal("parent", err)
	}
	fmt.Printf("spawned final-stage node at %s (child pid)\n", addr)
	rb, _ := buildTopology(pkgstream.WindowRemoteFinal(addr))
	rtop, err := rb.Build()
	if err != nil {
		fatal("parent", err)
	}
	start := time.Now()
	if err := pkgstream.NewRuntime(rtop, pkgstream.RuntimeOptions{QueueSize: 2048}).Run(); err != nil {
		fatal("parent", err)
	}
	elapsed := time.Since(start)

	results, err := pkgstream.NetDrainResults(addr, 30*time.Second)
	if err != nil {
		fatal("parent", err)
	}
	wait() // child exits on its own once every source finished

	remote := map[string]int64{}
	byWindow := map[int64][]pkgstream.NetWindowResult{}
	for _, r := range results {
		remote[key(r.Key, r.Start)] += r.Value
		byWindow[r.Start] = append(byWindow[r.Start], r)
	}

	total := int64(0)
	diffs := 0
	for k, v := range local {
		if remote[k] != v {
			diffs++
		}
		total += v
	}
	for k := range remote {
		if _, ok := local[k]; !ok {
			diffs++
		}
	}
	fmt.Printf("distributed run: %d pairs drained from the node in %v (%.0f words/s through the wire)\n",
		len(remote), elapsed.Round(time.Millisecond),
		float64(sources*perSource)/elapsed.Seconds())
	if diffs != 0 {
		fmt.Printf("MISMATCH: %d (word, window) pairs differ between deployments\n", diffs)
		os.Exit(1)
	}
	fmt.Printf("exact match: %d pairs, %d words — identical across process boundaries\n\n", len(local), total)

	// Fully distributed run: the PARTIAL stage leaves the parent too.
	// Spouts feed a credit-flow-controlled wire edge; the partial child
	// accumulates windows and forwards to its own final child; closed
	// windows come back by push subscription — three real processes.
	faddr, waitFinal, err := spawnNode("-node", "-sources", "1")
	if err != nil {
		fatal("parent", err)
	}
	paddr, waitPartial, err := spawnNode("-partial-node", faddr)
	if err != nil {
		fatal("parent", err)
	}
	fmt.Printf("spawned partial node %s → final node %s\n", paddr, faddr)
	fb, _ := buildTopology(pkgstream.WindowRemotePartial(paddr))
	ftop, err := fb.Build()
	if err != nil {
		fatal("parent", err)
	}
	start = time.Now()
	if err := pkgstream.NewRuntime(ftop, pkgstream.RuntimeOptions{QueueSize: 2048}).Run(); err != nil {
		fatal("parent", err)
	}
	pushed, err := pkgstream.NetSubscribeResults(faddr, 30*time.Second)
	elapsed3 := time.Since(start)
	if err != nil {
		fatal("parent", err)
	}
	waitPartial()
	waitFinal()
	full := map[string]int64{}
	for _, r := range pushed {
		full[key(r.Key, r.Start)] += r.Value
	}
	diffs = 0
	for k, v := range local {
		if full[k] != v {
			diffs++
		}
	}
	for k := range full {
		if _, ok := local[k]; !ok {
			diffs++
		}
	}
	fmt.Printf("three-process run: %d pairs pushed back in %v (%.0f words/s spout→wire→partial→final)\n",
		len(full), elapsed3.Round(time.Millisecond),
		float64(sources*perSource)/elapsed3.Seconds())
	if diffs != 0 {
		fmt.Printf("MISMATCH: %d (word, window) pairs differ in the three-process run\n", diffs)
		os.Exit(1)
	}
	fmt.Printf("exact match again: the full pipeline shape preserves every count\n\n")

	// Show the merged output: top words of the first few windows.
	starts := make([]int64, 0, len(byWindow))
	for st := range byWindow {
		starts = append(starts, st)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	fmt.Println("top-3 per window (merged on the remote node):")
	for _, st := range starts {
		ws := byWindow[st]
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].Value != ws[j].Value {
				return ws[i].Value > ws[j].Value
			}
			return ws[i].Key < ws[j].Key
		})
		if len(ws) > 3 {
			ws = ws[:3]
		}
		fmt.Printf("  [%4.0fs, %4.0fs)", time.Duration(st).Seconds(),
			time.Duration(st+int64(winSize)).Seconds())
		for _, wc := range ws {
			fmt.Printf("  %-8s %6d", wc.Key, wc.Value)
		}
		fmt.Println()
	}
}

// Streaming parallel decision tree (§VI.B, Ben-Haim & Tom-Tov): workers
// build mergeable histograms over their sub-streams; an aggregator merges
// them and grows the tree. Routing per-feature sub-messages with partial
// key grouping caps the histogram footprint at 2·D·C·L — independent of
// the number of workers — and the aggregator merges at most two
// histograms per triplet.
//
//	go run ./examples/decisiontree
package main

import (
	"fmt"

	"pkgstream"
)

func main() {
	const (
		features = 8
		classes  = 2
		workers  = 8
	)
	gen := pkgstream.NewSPDTDataGen(features, classes, 2, 3, 1)
	xs, ys := gen.Batch(8000)
	tx, ty := gen.Batch(2000)

	params := pkgstream.SPDTParams{Features: features, Classes: classes, MinLeafSamples: 400}

	// Sequential baseline.
	seq, err := pkgstream.NewSPDTTree(params)
	if err != nil {
		panic(err)
	}
	for i := range xs {
		seq.Update(xs[i], ys[i])
	}
	acc := func(predict func([]float64) int) float64 {
		correct := 0
		for i := range tx {
			if predict(tx[i]) == ty[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(tx))
	}
	fmt.Printf("streaming decision tree: %d samples, %d features, %d workers\n\n",
		len(xs), features, workers)
	fmt.Printf("sequential: accuracy %.1f%%, %d splits, depth %d\n\n",
		acc(seq.Predict)*100, seq.Splits(), seq.Depth())

	fmt.Printf("%-16s  %8s  %8s  %12s  %12s\n",
		"strategy", "accuracy", "splits", "histograms", "merge inputs")
	for _, strat := range []pkgstream.SPDTStrategy{
		pkgstream.SPDTShuffle, pkgstream.SPDTPKG, pkgstream.SPDTKey,
	} {
		par, err := pkgstream.NewSPDTTrainer(params, workers, strat, 1000, 42)
		if err != nil {
			panic(err)
		}
		for i := range xs {
			par.Train(xs[i], ys[i])
		}
		fmt.Printf("%-16s  %7.1f%%  %8d  %12d  %12d\n",
			strat, acc(par.Predict)*100, par.Tree().Splits(),
			par.HistogramCount(), par.MergeInputs())
	}
	fmt.Println("\nPKG on features: same accuracy, histogram state bounded by 2·D·C·L instead of W·D·C·L.")
}

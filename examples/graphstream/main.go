// Streaming graph in-degree under skewed sources (§V Q3, Figure 4):
// edges of a LiveJournal-shaped graph are key-grouped onto source PEs by
// their *source* vertex — so the sources inherit the out-degree skew —
// then inverted and partially key grouped onto workers by *destination*
// vertex. PKG keeps the workers balanced even though the sources are
// not, showing PKG can be chained after key grouping.
//
//	go run ./examples/graphstream
package main

import (
	"fmt"

	"pkgstream"
)

func main() {
	spec := pkgstream.LiveJournal.WithCap(400_000)

	run := func(assign pkgstream.InDegreeConfig) *pkgstream.InDegree {
		g := pkgstream.NewInDegree(assign)
		s := spec.Open(7)
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			g.ProcessEdge(m.SrcKey, m.Key)
		}
		return g
	}

	uniform := run(pkgstream.InDegreeConfig{
		Workers: 10, Sources: 5, Assignment: pkgstream.InDegreeUniformSources, Seed: 42,
	})
	skewed := run(pkgstream.InDegreeConfig{
		Workers: 10, Sources: 5, Assignment: pkgstream.InDegreeKeyedSources, Seed: 42,
	})

	fmt.Printf("graph stream: %s-shaped, %d edges\n\n", spec.Name, spec.Messages)
	fmt.Printf("%-8s  %24s  %24s\n", "", "source imbalance (frac)", "worker imbalance (frac)")
	fmt.Printf("%-8s  %24.6f  %24.6f\n", "uniform",
		uniform.SourceImbalanceFraction(), uniform.WorkerImbalanceFraction())
	fmt.Printf("%-8s  %24.6f  %24.6f\n", "skewed",
		skewed.SourceImbalanceFraction(), skewed.WorkerImbalanceFraction())

	fmt.Println("\nhighest in-degree vertices (skewed-sources run):")
	for i, vd := range skewed.TopDegrees(8) {
		fmt.Printf("%2d. vertex %-8d in-degree %d\n", i+1, vd.Vertex, vd.Degree)
	}
	fmt.Println("\nworkers stay balanced even with sources skewed by the out-degree distribution —")
	fmt.Println("each source balances its own portion, and loads are additive (§III.B).")
}

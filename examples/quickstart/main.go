// Quickstart: balance a skewed stream with PARTIAL KEY GROUPING in a few
// lines, and see why single-choice hashing cannot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pkgstream"
)

func main() {
	const workers = 10
	const seed = 42

	// A Wikipedia-shaped stream: 9.3% of messages carry the hottest key.
	spec := pkgstream.Wikipedia.WithCap(500_000)

	// PKG: two hash choices per key, decided by a local load estimate.
	view := pkgstream.NewLoad(workers) // the source's own estimate
	pkg := pkgstream.NewPKG(workers, 2, seed, view)
	pkgLoads := pkgstream.NewLoad(workers) // ground truth

	s := spec.Open(seed)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		w := pkg.Route(m.Key) // least-loaded of the key's 2 candidates
		view.Add(w)           // local load estimation: charge own view
		pkgLoads.Add(w)
	}

	// The baseline: key grouping = a single hash.
	kg := pkgstream.NewKeyGrouping(workers, seed)
	kgLoads := pkgstream.NewLoad(workers)
	s = spec.Open(seed)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		kgLoads.Add(kg.Route(m.Key))
	}

	fmt.Printf("stream: %s, %d messages, p1 = %.2f%%\n\n", spec.Name, spec.Messages, spec.P1*100)
	show := func(name string, l *pkgstream.Load) {
		fmt.Printf("%-4s loads:", name)
		for i := 0; i < l.N(); i++ {
			fmt.Printf(" %6d", l.Get(i))
		}
		fmt.Printf("\n     imbalance I = max-avg = %.0f (%.4f%% of stream)\n\n",
			l.Imbalance(), l.ImbalanceFraction()*100)
	}
	show("PKG", pkgLoads)
	show("KG", kgLoads)

	fmt.Printf("PKG reduces the imbalance by a factor of %.0f\n",
		kgLoads.Imbalance()/pkgLoads.Imbalance())
}

// Streaming naive Bayes with vertical parallelism (§VI.A): token
// counters are spread over 9 workers by partial key grouping, so
// training load is balanced despite Zipf token skew and prediction
// probes exactly two workers per token — no broadcast, no stragglers.
//
//	go run ./examples/naivebayes
package main

import (
	"fmt"

	"pkgstream"
)

func main() {
	const (
		classes = 2
		vocab   = 5000
		docLen  = 20
		workers = 9
	)
	gen := pkgstream.NewNBGenerator(classes, vocab, docLen, 0.09, 1)
	train := gen.Batch(5000)
	test := gen.Batch(1000)

	// Sequential baseline and three distributed layouts.
	seq := pkgstream.NewNBModel(classes, vocab, 1)
	for _, s := range train {
		seq.Train(s)
	}
	dist := map[string]*pkgstream.NBDistributed{
		"PKG": pkgstream.NewNBDistributed(workers, classes, vocab, 1, pkgstream.NBByPKG, 42),
		"KG":  pkgstream.NewNBDistributed(workers, classes, vocab, 1, pkgstream.NBByKey, 42),
		"SG":  pkgstream.NewNBDistributed(workers, classes, vocab, 1, pkgstream.NBByShuffle, 42),
	}
	for _, d := range dist {
		for _, s := range train {
			d.Train(s)
		}
	}

	acc := func(predict func([]uint64) int) float64 {
		correct := 0
		for _, s := range test {
			if predict(s.Tokens) == s.Class {
				correct++
			}
		}
		return float64(correct) / float64(len(test))
	}

	fmt.Printf("naive Bayes: %d training docs, vocab %d, %d workers\n\n", len(train), vocab, workers)
	fmt.Printf("sequential accuracy: %.1f%%\n\n", acc(seq.Predict)*100)
	fmt.Printf("%-4s  %8s  %12s  %14s  %12s\n",
		"", "accuracy", "imbalance", "counters", "probes/token")
	for _, name := range []string{"KG", "SG", "PKG"} {
		d := dist[name]
		fmt.Printf("%-4s  %7.1f%%  %12.1f  %14d  %12d\n",
			name, acc(d.Predict)*100, d.Imbalance(), d.CounterFootprint(), d.ProbesPerToken(1))
	}
	fmt.Println("\nall layouts hold identical counts — predictions match the sequential model exactly;")
	fmt.Println("PKG gets SG-grade load balance with 2-probe queries and ≤2 counters per token.")
}

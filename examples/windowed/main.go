// Sliding-window trending words: a skewed stream whose hot word shifts
// over (logical) time, counted by the windowed two-phase aggregation —
// PKG-partial counters flushed every aggregation period, merged
// downstream, windows closed by watermark. Each 30s window reports its
// own top words, so the trend is visible window by window: something the
// repo's running-total word count cannot express.
//
//	go run ./examples/windowed
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pkgstream"
)

const (
	// Two sources with deliberately skewed logical clocks: source 1 runs
	// a full clockSkew behind source 0. Each source advertises its own
	// event-time progress with SourceMark tuples, so the aggregation's
	// watermark is the exact minimum across sources — no
	// WindowSpec.Lateness sizing, and still zero late drops.
	sources   = 2
	clockSkew = 5 * time.Second
	workers   = 9
	perSource = 150_000                // words per source
	tick      = 500 * time.Microsecond // logical time between words
	hotEvery  = 50 * time.Second       // the trending word changes every 50s
	winSize   = 30 * time.Second
	winSlide  = 15 * time.Second
	markEvery = 1_000 // words between SourceMark progress updates
)

var trending = []string{"gopher", "heron", "kraken"}

// trendSpout emits a Zipf-ish tail plus a per-epoch hot word carrying
// ~20% of the stream, with a pre-stamped logical clock (EmitNanos starts
// nonzero — zero means "unset" and would be wall-clock stamped).
type trendSpout struct {
	i, n int
	idx  int
}

func (s *trendSpout) Open(ctx *pkgstream.Context) { s.idx = ctx.Index }
func (s *trendSpout) Close()                      {}

func (s *trendSpout) Next(out pkgstream.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	at := time.Duration(s.i)*tick + time.Duration(s.idx)*clockSkew
	word := trending[int(at/hotEvery)%len(trending)]
	if r := (s.i*7919 + s.idx*104729) % 100; r >= 20 {
		// The tail: a crude skewed draw over 5000 words.
		word = fmt.Sprintf("w%d", r*r*(s.i%71)%5000)
	}
	out.Emit(pkgstream.Tuple{Key: word, EmitNanos: int64(at)})
	if s.i%markEvery == 0 {
		// This source promises to never emit below `at` again.
		out.Emit(pkgstream.SourceMark(s.idx, int64(at)))
	}
	if s.i == s.n {
		// Final promise: release the watermark from this source's clock.
		out.Emit(pkgstream.SourceMark(s.idx, int64(1)<<62))
	}
	return s.i < s.n
}

// windowSink collects each closed window's per-word totals.
type windowSink struct {
	mu   *sync.Mutex
	wins map[int64][]pkgstream.WordCount
}

func (b *windowSink) Prepare(*pkgstream.Context) {}
func (b *windowSink) Cleanup(pkgstream.Emitter)  {}

func (b *windowSink) Execute(t pkgstream.Tuple, _ pkgstream.Emitter) {
	if t.Tick {
		return
	}
	res := t.Values[0].(pkgstream.WindowResult)
	b.mu.Lock()
	b.wins[res.Start] = append(b.wins[res.Start],
		pkgstream.WordCount{Word: res.Key, Count: res.Value.(int64)})
	b.mu.Unlock()
}

func main() {
	var mu sync.Mutex
	wins := map[int64][]pkgstream.WordCount{}

	plan := pkgstream.MustWindowPlan(pkgstream.CountAggregator(), pkgstream.WindowSpec{
		Size:        winSize,
		Slide:       winSlide,
		EveryTuples: 5_000,   // aggregation period T (count-based, deterministic)
		Sources:     sources, // watermark = min over per-source marks, exactly
	})

	b := pkgstream.NewTopologyBuilder("trending", 42)
	b.AddSpout("words", func() pkgstream.Spout { return &trendSpout{n: perSource} }, sources)
	b.WindowedAggregate("trend", plan, workers).
		Input("words", pkgstream.GroupSourceAware(pkgstream.GroupPartial()))
	b.AddBolt("sink", func() pkgstream.Bolt {
		return &windowSink{mu: &mu, wins: wins}
	}, 1).Input("trend", pkgstream.GroupGlobal())
	top, err := b.Build()
	if err != nil {
		panic(err)
	}
	rt := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 2048})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	total := sources * perSource
	fmt.Printf("%d words over %v of stream time, %d sliding windows (%v size, %v slide)\n",
		total, time.Duration(perSource)*tick, len(wins), winSize, winSlide)
	fmt.Printf("processed in %v (%.0f words/s)\n\n",
		elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())

	starts := make([]int64, 0, len(wins))
	for s := range wins {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	fmt.Println("top-3 per window (watch the trending word change):")
	for _, s := range starts {
		counts := wins[s]
		sort.Slice(counts, func(i, j int) bool {
			if counts[i].Count != counts[j].Count {
				return counts[i].Count > counts[j].Count
			}
			return counts[i].Word < counts[j].Word
		})
		top := counts
		if len(top) > 3 {
			top = top[:3]
		}
		fmt.Printf("  [%4.0fs, %4.0fs)", time.Duration(s).Seconds(),
			(time.Duration(s) + winSize).Seconds())
		for _, wc := range top {
			fmt.Printf("  %-8s %6d", wc.Word, wc.Count)
		}
		fmt.Println()
	}

	st := rt.Stats()
	parts := st.WindowTotals("trend.partial")
	final := st.WindowTotals("trend")
	fmt.Printf("\naggregation: %d flush rounds, %d partials flushed, %d merged downstream\n",
		parts.Flushes, parts.PartialsOut, final.Merged)
	fmt.Printf("memory: max %d live (word, window) counters on one worker; %d windows closed, %d late partials dropped\n",
		parts.MaxLive, final.WindowsClosed, final.LateDropped)
}

// Distributed heavy hitters (§VI.C): SpaceSaving summaries on 9 workers
// fed through partial key grouping. Each item lives on at most two
// deterministic workers, so point queries probe 2 workers (vs W under
// shuffle grouping) and their error bound sums over 2 summaries only,
// while the worker load stays balanced despite the skew.
//
//	go run ./examples/heavyhitters
package main

import (
	"fmt"

	"pkgstream"
)

func main() {
	const workers, capacity = 9, 256
	spec := pkgstream.Twitter.WithCap(400_000)

	feed := func(strategy pkgstream.HHStrategy) *pkgstream.HeavyHitters {
		hh := pkgstream.NewHeavyHitters(workers, capacity, strategy, 42)
		s := spec.Open(7)
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			hh.Update(m.Key)
		}
		return hh
	}

	pkgHH := feed(pkgstream.HHByPKG)
	kgHH := feed(pkgstream.HHByKey)
	sgHH := feed(pkgstream.HHByShuffle)

	fmt.Printf("stream: %s-shaped, %d messages, p1 = %.2f%%\n\n", spec.Name, spec.Messages, spec.P1*100)

	fmt.Println("top-10 items (PKG, merged from ≤2 summaries per item):")
	for i, c := range pkgHH.TopK(capacity, 10) {
		fmt.Printf("%3d. key %-8d count %7d (±%d)\n", i+1, c.Item, c.Count, c.Err)
	}

	fmt.Println("\nstrategy comparison:")
	fmt.Printf("%-8s  %14s  %12s\n", "", "imbalance", "probes/query")
	for _, row := range []struct {
		name string
		hh   *pkgstream.HeavyHitters
	}{{"KG", kgHH}, {"SG", sgHH}, {"PKG", pkgHH}} {
		fmt.Printf("%-8s  %14.1f  %12d\n", row.name, row.hh.Imbalance(), row.hh.ProbeCount(1))
	}

	fmt.Println("\npoint queries under PKG (estimate ± error, 2 probes each):")
	for _, item := range []uint64{1, 2, 3, 10, 100} {
		c := pkgHH.Estimate(item)
		fmt.Printf("  key %-4d → %7d ± %-5d (probes %d)\n",
			item, c.Count, c.Err, pkgHH.ProbeCount(item))
	}
}
